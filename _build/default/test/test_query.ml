open Kaskade_query

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Paper Listing 1: the job blast-radius query. *)
let listing1 =
  "SELECT A.pipelineName, AVG(T_CPU) FROM (\n\
   SELECT A, SUM(B.CPU) AS T_CPU FROM (\n\
   MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)\n\
   (q_f1:File)-[r*0..8]->(q_f2:File)\n\
   (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)\n\
   RETURN q_j1 as A, q_j2 as B\n\
   ) GROUP BY A, B\n\
   ) GROUP BY A.pipelineName"

(* Paper Listing 4: the same query rewritten over a 2-hop connector. *)
let listing4 =
  "SELECT A.pipelineName, AVG(T_CPU) FROM (\n\
   SELECT A, SUM(B.CPU) AS T_CPU FROM (\n\
   MATCH (q_j1:Job)-[:JOB_TO_JOB_2HOP*1..4]->(q_j2:Job)\n\
   RETURN q_j1 as A, q_j2 as B\n\
   ) GROUP BY A, B\n\
   ) GROUP BY A.pipelineName"

let prov_schema = Kaskade_gen.Provenance_gen.schema

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_keywords_case_insensitive () =
  match Qlexer.tokenize "select Match RETURN" with
  | [ Qlexer.KEYWORD "SELECT"; Qlexer.KEYWORD "MATCH"; Qlexer.KEYWORD "RETURN"; Qlexer.EOF ] -> ()
  | _ -> Alcotest.fail "keywords not normalized"

let test_lexer_identifiers_keep_case () =
  match Qlexer.tokenize "WRITES_TO q_j1" with
  | [ Qlexer.IDENT "WRITES_TO"; Qlexer.IDENT "q_j1"; Qlexer.EOF ] -> ()
  | _ -> Alcotest.fail "identifiers mangled"

let test_lexer_arrows_and_ranges () =
  let toks = Qlexer.tokenize "-[r*0..8]->" in
  check_bool "dotdot" true (List.mem Qlexer.DOTDOT toks);
  check_bool "arrow" true (List.mem Qlexer.ARROW_RIGHT toks);
  check_bool "star" true (List.mem Qlexer.STAR toks)

let test_lexer_floats_vs_ranges () =
  (match Qlexer.tokenize "1.5" with
  | [ Qlexer.FLOAT_LIT f; Qlexer.EOF ] -> Alcotest.(check (float 1e-9)) "float" 1.5 f
  | _ -> Alcotest.fail "float");
  match Qlexer.tokenize "1..5" with
  | [ Qlexer.INT_LIT 1; Qlexer.DOTDOT; Qlexer.INT_LIT 5; Qlexer.EOF ] -> ()
  | _ -> Alcotest.fail "range"

let test_lexer_strings () =
  match Qlexer.tokenize "'it''s'" with
  | [ Qlexer.STRING_LIT "it's"; Qlexer.EOF ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lexer_comments () =
  match Qlexer.tokenize "a -- comment\nb" with
  | [ Qlexer.IDENT "a"; Qlexer.IDENT "b"; Qlexer.EOF ] -> ()
  | _ -> Alcotest.fail "comment not skipped"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_listing1_structure () =
  match Qparser.parse listing1 with
  | Ast.Select outer -> begin
    check_int "outer items" 2 (List.length outer.Ast.items);
    check_int "outer group by" 1 (List.length outer.Ast.group_by);
    match outer.Ast.from with
    | Ast.From_select inner -> begin
      match inner.Ast.from with
      | Ast.From_match mb ->
        check_int "three juxtaposed patterns" 3 (List.length mb.Ast.patterns);
        check_int "two returns" 2 (List.length mb.Ast.returns)
      | _ -> Alcotest.fail "expected MATCH innermost"
    end
    | _ -> Alcotest.fail "expected nested SELECT"
  end
  | _ -> Alcotest.fail "expected SELECT"

let test_parse_var_length () =
  let q = Qparser.parse "MATCH (a:File)-[r*0..8]->(b:File) RETURN a" in
  match Ast.patterns_of q with
  | [ { Ast.p_steps = [ (e, _) ]; _ } ] -> begin
    match e.Ast.e_len with
    | Ast.Var_length (0, 8) -> check_bool "var named" true (e.Ast.e_var = Some "r")
    | _ -> Alcotest.fail "wrong length"
  end
  | _ -> Alcotest.fail "wrong pattern"

let test_parse_var_length_forms () =
  let len src =
    match Ast.patterns_of (Qparser.parse src) with
    | [ { Ast.p_steps = [ (e, _) ]; _ } ] -> e.Ast.e_len
    | _ -> Alcotest.fail "pattern"
  in
  check_bool "star" true (len "MATCH (a)-[*]->(b) RETURN a" = Ast.Var_length (1, max_int));
  check_bool "star k" true (len "MATCH (a)-[*3]->(b) RETURN a" = Ast.Var_length (3, 3));
  check_bool "star range" true (len "MATCH (a)-[*1..4]->(b) RETURN a" = Ast.Var_length (1, 4));
  check_bool "single" true (len "MATCH (a)-[:E]->(b) RETURN a" = Ast.Single)

let test_parse_backward_edge () =
  let q = Qparser.parse "MATCH (j:Job)<-[r*1..4]-(anc:Job) RETURN j, anc" in
  match Ast.patterns_of q with
  | [ { Ast.p_steps = [ (e, _) ]; _ } ] -> check_bool "backward" true (e.Ast.e_dir = Ast.Bwd)
  | _ -> Alcotest.fail "pattern"

let test_parse_where () =
  let q = Qparser.parse "MATCH (j:Job) WHERE j.CPU > 100 AND NOT j.CPU > 400 RETURN j" in
  match q with
  | Ast.Match_only mb -> check_bool "where present" true (mb.Ast.m_where <> None)
  | _ -> Alcotest.fail "match"

let test_parse_comma_patterns () =
  let q = Qparser.parse "MATCH (a:Job)-[:WRITES_TO]->(f:File), (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b" in
  check_int "two patterns" 2 (List.length (Ast.patterns_of q))

let test_parse_call () =
  match Qparser.parse "CALL algo.labelPropagation(25)" with
  | Ast.Call { proc = "algo.labelPropagation"; proc_args = [ Kaskade_graph.Value.Int 25 ] } -> ()
  | _ -> Alcotest.fail "call"

let test_parse_call_string_arg () =
  match Qparser.parse "CALL algo.largestCommunity('Job')" with
  | Ast.Call { proc_args = [ Kaskade_graph.Value.Str "Job" ]; _ } -> ()
  | _ -> Alcotest.fail "call arg"

let test_parse_expression_precedence () =
  match Qparser.parse_expr "1 + 2 * 3 > 6 AND TRUE" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Gt, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _), _) -> ()
  | e -> Alcotest.fail ("precedence: " ^ Ast.expr_to_string e)

let test_parse_aggregates () =
  (match Qparser.parse_expr "SUM(x.CPU) / COUNT(*)" with
  | Ast.Binop (Ast.Div, Ast.Agg (Ast.Sum, _), Ast.Count_star) -> ()
  | _ -> Alcotest.fail "agg expr");
  check_bool "has_aggregate" true (Ast.has_aggregate (Qparser.parse_expr "1 + MAX(y)"));
  check_bool "no aggregate" false (Ast.has_aggregate (Qparser.parse_expr "1 + y"))

let test_parse_errors () =
  let fails src = try ignore (Qparser.parse src); false with Qparser.Parse_error _ -> true in
  check_bool "garbage" true (fails "FOO BAR");
  check_bool "missing return" true (fails "MATCH (a)");
  check_bool "unclosed paren" true (fails "SELECT a FROM (MATCH (x) RETURN x");
  check_bool "bad range" true (fails "MATCH (a)-[*1..]->(b) RETURN a")

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip                                           *)

let roundtrip src =
  let q = Qparser.parse src in
  let printed = Pretty.to_string q in
  let q2 = Qparser.parse printed in
  check_string "stable under reprint" printed (Pretty.to_string q2)

let test_roundtrip_listing1 () = roundtrip listing1
let test_roundtrip_listing4 () = roundtrip listing4
let test_roundtrip_match () = roundtrip "MATCH (j:Job)<-[r*1..4]-(anc:Job) WHERE j.CPU > 10 RETURN j, anc"
let test_roundtrip_call () = roundtrip "CALL algo.labelPropagation(25)"

let test_roundtrip_count () =
  roundtrip "SELECT COUNT(*) FROM (MATCH (a)-[r]->(b) RETURN a)"


let test_parse_order_by_limit () =
  match Qparser.parse "SELECT j.CPU AS c FROM (MATCH (j:Job) RETURN j) ORDER BY c DESC, j.name LIMIT 5" with
  | Ast.Select sb ->
    check_int "two order keys" 2 (List.length sb.Ast.order_by);
    check_bool "first desc" true (snd (List.hd sb.Ast.order_by) = Ast.Desc);
    check_bool "second asc" true (snd (List.nth sb.Ast.order_by 1) = Ast.Asc);
    check_bool "limit" true (sb.Ast.limit = Some 5)
  | _ -> Alcotest.fail "select"

let test_roundtrip_order_limit () =
  roundtrip "SELECT j.CPU AS c FROM (MATCH (j:Job) RETURN j) ORDER BY c DESC LIMIT 3"

let test_parse_distinct () =
  match Qparser.parse "SELECT DISTINCT j FROM (MATCH (j:Job) RETURN j)" with
  | Ast.Select sb -> check_bool "distinct flag" true sb.Ast.distinct
  | _ -> Alcotest.fail "select";;

let test_roundtrip_distinct () =
  roundtrip "SELECT DISTINCT j.name FROM (MATCH (j:Job) RETURN j)"

(* ------------------------------------------------------------------ *)
(* Analyze                                                             *)

let test_analyze_listing1 () =
  let s = Analyze.check prov_schema (Qparser.parse listing1) in
  Alcotest.(check (list (pair string string)))
    "vertex types"
    [ ("q_f1", "File"); ("q_f2", "File"); ("q_j1", "Job"); ("q_j2", "Job") ]
    s.Analyze.vertex_types;
  check_int "two labeled edges" 2 (List.length s.Analyze.edges);
  Alcotest.(check (list (pair string (pair string (pair int int)))))
    "var length path"
    [ ("q_f1", ("q_f2", (0, 8))) ]
    (List.map (fun (a, b, lo, hi) -> (a, (b, (lo, hi)))) s.Analyze.var_length_paths);
  Alcotest.(check (list string)) "returned" [ "q_j1"; "q_j2" ] s.Analyze.returned_vars

let test_analyze_infers_types_from_edges () =
  let s = Analyze.check prov_schema (Qparser.parse "MATCH (a)-[:WRITES_TO]->(b) RETURN a, b") in
  check_bool "a inferred Job" true (Analyze.infer_vertex_type s "a" = Some "Job");
  check_bool "b inferred File" true (Analyze.infer_vertex_type s "b" = Some "File")

let test_analyze_backward_normalized () =
  let s = Analyze.check prov_schema (Qparser.parse "MATCH (f:File)<-[:WRITES_TO]-(j:Job) RETURN j") in
  Alcotest.(check (list (pair string string)))
    "edge normalized to forward"
    [ ("j", "f") ]
    (List.map (fun (a, b, _) -> (a, b)) s.Analyze.edges)

let test_analyze_errors () =
  let fails src =
    try
      ignore (Analyze.check prov_schema (Qparser.parse src));
      false
    with Analyze.Semantic_error _ -> true
  in
  check_bool "unknown vertex type" true (fails "MATCH (x:Ghost) RETURN x");
  check_bool "unknown edge type" true (fails "MATCH (a)-[:GHOST]->(b) RETURN a");
  check_bool "type conflict" true (fails "MATCH (a:Job)-[:IS_READ_BY]->(b) RETURN a");
  check_bool "bad var length" true (fails "MATCH (a)-[r*4..2]->(b) RETURN a");
  check_bool "unbound return" true (fails "MATCH (a:Job) RETURN zz")

let test_analyze_conflicting_var_types () =
  let fails =
    try
      ignore
        (Analyze.check prov_schema
           (Qparser.parse "MATCH (x:Job)-[:WRITES_TO]->(f:File), (x:File)-[:IS_READ_BY]->(j:Job) RETURN j"));
      false
    with Analyze.Semantic_error _ -> true
  in
  check_bool "conflict detected" true fails

(* ------------------------------------------------------------------ *)
(* AST utilities                                                       *)

let test_map_patterns () =
  let q = Qparser.parse listing1 in
  let n = ref 0 in
  let q' = Ast.map_patterns (fun p -> incr n; p) q in
  check_int "visits all patterns" 3 !n;
  check_string "identity map" (Pretty.to_string q) (Pretty.to_string q')

let test_item_name () =
  check_string "alias" "A" (Ast.item_name 0 { Ast.item_expr = Ast.Var "x"; alias = Some "A" });
  check_string "var" "x" (Ast.item_name 0 { Ast.item_expr = Ast.Var "x"; alias = None });
  check_string "prop" "x.p" (Ast.item_name 0 { Ast.item_expr = Ast.Prop ("x", "p"); alias = None });
  check_string "fallback" "col3"
    (Ast.item_name 3 { Ast.item_expr = Ast.Count_star; alias = None })

let () =
  Alcotest.run "kaskade_query"
    [
      ( "lexer",
        [
          Alcotest.test_case "keywords case-insensitive" `Quick test_lexer_keywords_case_insensitive;
          Alcotest.test_case "identifiers keep case" `Quick test_lexer_identifiers_keep_case;
          Alcotest.test_case "arrows and ranges" `Quick test_lexer_arrows_and_ranges;
          Alcotest.test_case "floats vs ranges" `Quick test_lexer_floats_vs_ranges;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
        ] );
      ( "parser",
        [
          Alcotest.test_case "listing 1 structure" `Quick test_parse_listing1_structure;
          Alcotest.test_case "variable length" `Quick test_parse_var_length;
          Alcotest.test_case "variable length forms" `Quick test_parse_var_length_forms;
          Alcotest.test_case "backward edge" `Quick test_parse_backward_edge;
          Alcotest.test_case "where clause" `Quick test_parse_where;
          Alcotest.test_case "comma patterns" `Quick test_parse_comma_patterns;
          Alcotest.test_case "call" `Quick test_parse_call;
          Alcotest.test_case "call string arg" `Quick test_parse_call_string_arg;
          Alcotest.test_case "expression precedence" `Quick test_parse_expression_precedence;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "order by / limit" `Quick test_parse_order_by_limit;
          Alcotest.test_case "distinct" `Quick test_parse_distinct;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip listing 1" `Quick test_roundtrip_listing1;
          Alcotest.test_case "roundtrip listing 4" `Quick test_roundtrip_listing4;
          Alcotest.test_case "roundtrip match" `Quick test_roundtrip_match;
          Alcotest.test_case "roundtrip call" `Quick test_roundtrip_call;
          Alcotest.test_case "roundtrip count" `Quick test_roundtrip_count;
          Alcotest.test_case "roundtrip order/limit" `Quick test_roundtrip_order_limit;
          Alcotest.test_case "roundtrip distinct" `Quick test_roundtrip_distinct;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "listing 1 summary" `Quick test_analyze_listing1;
          Alcotest.test_case "type inference" `Quick test_analyze_infers_types_from_edges;
          Alcotest.test_case "backward normalized" `Quick test_analyze_backward_normalized;
          Alcotest.test_case "errors" `Quick test_analyze_errors;
          Alcotest.test_case "conflicting var types" `Quick test_analyze_conflicting_var_types;
        ] );
      ( "ast",
        [
          Alcotest.test_case "map_patterns" `Quick test_map_patterns;
          Alcotest.test_case "item_name" `Quick test_item_name;
        ] );
    ]
