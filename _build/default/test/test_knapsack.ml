open Kaskade_knapsack.Knapsack

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let item id weight value = { id; weight; value }

let test_bnb_basic () =
  let items = [ item 0 10 60.0; item 1 20 100.0; item 2 30 120.0 ] in
  let s = solve_branch_and_bound ~capacity:50 items in
  check_float "classic optimum" 220.0 s.total_value;
  Alcotest.(check (list int)) "chosen" [ 1; 2 ] s.chosen;
  check_int "weight" 50 s.total_weight

let test_dp_basic () =
  let items = [ item 0 10 60.0; item 1 20 100.0; item 2 30 120.0 ] in
  let s = solve_dp ~capacity:50 items in
  check_float "dp optimum" 220.0 s.total_value

let test_greedy_can_be_suboptimal () =
  (* Density order picks the small dense item, missing the optimum. *)
  let items = [ item 0 1 2.0; item 1 10 10.0 ] in
  let g = solve_greedy ~capacity:10 items in
  let opt = solve_dp ~capacity:10 items in
  check_float "greedy" 2.0 g.total_value;
  check_float "optimal" 10.0 opt.total_value

let test_zero_capacity () =
  let items = [ item 0 1 5.0 ] in
  let s = solve_branch_and_bound ~capacity:0 items in
  check_float "nothing fits" 0.0 s.total_value;
  Alcotest.(check (list int)) "empty" [] s.chosen

let test_oversized_items_skipped () =
  let items = [ item 0 100 50.0; item 1 5 1.0 ] in
  let s = solve_branch_and_bound ~capacity:10 items in
  Alcotest.(check (list int)) "only the fitting item" [ 1 ] s.chosen

let test_nonpositive_value_skipped () =
  let items = [ item 0 1 0.0; item 1 1 (-3.0); item 2 1 2.0 ] in
  let s = solve_branch_and_bound ~capacity:10 items in
  Alcotest.(check (list int)) "positive value only" [ 2 ] s.chosen

let test_empty_items () =
  let s = solve_branch_and_bound ~capacity:10 [] in
  check_float "empty" 0.0 s.total_value

let test_negative_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Knapsack.solve_dp: negative capacity") (fun () ->
      ignore (solve_dp ~capacity:(-1) []))

let test_node_limit_feasible () =
  let items = List.init 30 (fun i -> item i (1 + (i mod 7)) (float_of_int (1 + (i mod 5)))) in
  let s = solve_branch_and_bound ~node_limit:50 ~capacity:40 items in
  check_bool "feasible under tiny node budget" true (s.total_weight <= 40)

let test_all_fit () =
  let items = [ item 0 1 1.0; item 1 2 2.0; item 2 3 3.0 ] in
  let s = solve_branch_and_bound ~capacity:100 items in
  check_float "take everything" 6.0 s.total_value

(* Properties: B&B matches the DP optimum; greedy never beats it;
   solutions are feasible and self-consistent. *)
let random_instance =
  QCheck.make
    ~print:(fun (cap, items) ->
      Printf.sprintf "cap=%d items=[%s]" cap
        (String.concat "; " (List.map (fun (w, v) -> Printf.sprintf "(%d, %.1f)" w v) items)))
    QCheck.Gen.(
      pair (0 -- 50)
        (list_size (0 -- 12) (pair (1 -- 20) (float_bound_inclusive 25.0))))

let items_of spec = List.mapi (fun i (w, v) -> item i w v) spec

let prop_bnb_equals_dp =
  QCheck.Test.make ~name:"branch-and-bound matches DP optimum" ~count:300 random_instance
    (fun (cap, spec) ->
      let items = items_of spec in
      let a = solve_branch_and_bound ~capacity:cap items in
      let b = solve_dp ~capacity:cap items in
      abs_float (a.total_value -. b.total_value) < 1e-6)

let prop_greedy_bounded =
  QCheck.Test.make ~name:"greedy never exceeds optimum, always feasible" ~count:300 random_instance
    (fun (cap, spec) ->
      let items = items_of spec in
      let g = solve_greedy ~capacity:cap items in
      let opt = solve_dp ~capacity:cap items in
      g.total_value <= opt.total_value +. 1e-6 && g.total_weight <= cap)

let prop_solution_consistent =
  QCheck.Test.make ~name:"reported totals match the chosen set" ~count:300 random_instance
    (fun (cap, spec) ->
      let items = items_of spec in
      let s = solve_branch_and_bound ~capacity:cap items in
      let lookup id = List.find (fun it -> it.id = id) items in
      let w = List.fold_left (fun acc id -> acc + (lookup id).weight) 0 s.chosen in
      let v = List.fold_left (fun acc id -> acc +. (lookup id).value) 0.0 s.chosen in
      w = s.total_weight && abs_float (v -. s.total_value) < 1e-6 && w <= cap)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_bnb_equals_dp; prop_greedy_bounded; prop_solution_consistent ]

let () =
  Alcotest.run "kaskade_knapsack"
    [
      ( "solvers",
        [
          Alcotest.test_case "bnb classic" `Quick test_bnb_basic;
          Alcotest.test_case "dp classic" `Quick test_dp_basic;
          Alcotest.test_case "greedy suboptimal" `Quick test_greedy_can_be_suboptimal;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "oversized skipped" `Quick test_oversized_items_skipped;
          Alcotest.test_case "non-positive value skipped" `Quick test_nonpositive_value_skipped;
          Alcotest.test_case "empty items" `Quick test_empty_items;
          Alcotest.test_case "negative capacity" `Quick test_negative_capacity;
          Alcotest.test_case "node limit" `Quick test_node_limit_feasible;
          Alcotest.test_case "all fit" `Quick test_all_fit;
        ] );
      ("properties", qcheck_cases);
    ]
