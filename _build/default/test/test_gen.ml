open Kaskade_graph
open Kaskade_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Provenance generator                                                *)

let prov_small = Provenance_gen.{ default with jobs = 200; files = 400; seed = 5 }

let test_prov_counts () =
  let g = Provenance_gen.generate prov_small in
  check_int "jobs" 200 (Array.length (Graph.vertices_of_type_name g "Job"));
  check_int "files" 400 (Array.length (Graph.vertices_of_type_name g "File"));
  check_bool "has tasks" true (Array.length (Graph.vertices_of_type_name g "Task") > 0);
  check_bool "edges exist" true (Graph.n_edges g > 500)

let test_prov_determinism () =
  let a = Provenance_gen.generate prov_small in
  let b = Provenance_gen.generate prov_small in
  check_int "same |V|" (Graph.n_vertices a) (Graph.n_vertices b);
  check_int "same |E|" (Graph.n_edges a) (Graph.n_edges b);
  (* Edge-by-edge equality. *)
  let same = ref true in
  Graph.iter_edges a (fun ~eid ~src ~dst ~etype ->
      let s, d = Graph.edge_endpoints b eid in
      if s <> src || d <> dst || Graph.edge_type b eid <> etype then same := false);
  check_bool "identical edge streams" true !same

let test_prov_seed_changes_graph () =
  let a = Provenance_gen.generate prov_small in
  let b = Provenance_gen.generate { prov_small with Provenance_gen.seed = 6 } in
  let differs = ref false in
  let m = Stdlib.min (Graph.n_edges a) (Graph.n_edges b) in
  (try
     for e = 0 to m - 1 do
       if Graph.edge_endpoints a e <> Graph.edge_endpoints b e then begin
         differs := true;
         raise Exit
       end
     done
   with Exit -> ());
  check_bool "different seed, different graph" true (!differs || Graph.n_edges a <> Graph.n_edges b)

let test_prov_every_file_written () =
  let g = Provenance_gen.generate prov_small in
  (* The paper's invariant: all files are created by some job. *)
  let writes = Schema.edge_type_id (Graph.schema g) "WRITES_TO" in
  Array.iter
    (fun f ->
      let written = ref false in
      Graph.iter_in g f (fun ~src:_ ~etype ~eid:_ -> if etype = writes then written := true);
      if not !written then Alcotest.failf "file %d has no writer" f)
    (Graph.vertices_of_type_name g "File")

let test_prov_job_props () =
  let g = Provenance_gen.generate prov_small in
  Array.iter
    (fun j ->
      (match Graph.vprop g j "CPU" with
      | Some (Value.Float c) -> check_bool "CPU positive" true (c > 0.0)
      | _ -> Alcotest.fail "missing CPU");
      match Graph.vprop g j "pipelineName" with
      | Some (Value.Str _) -> ()
      | _ -> Alcotest.fail "missing pipelineName")
    (Graph.vertices_of_type_name g "Job")

let test_prov_no_job_job_edges () =
  (* Schema-level guarantee, verified on the instance: 1-hop neighbors
     of a Job are never Jobs. *)
  let g = Provenance_gen.generate prov_small in
  Array.iter
    (fun j ->
      Graph.iter_out g j (fun ~dst ~etype:_ ~eid:_ ->
          if Graph.vertex_type_name g dst = "Job" then Alcotest.fail "job-job edge"))
    (Graph.vertices_of_type_name g "Job")

let test_prov_scaled () =
  let cfg = Provenance_gen.scaled ~edges:30_000 ~seed:1 in
  let g = Provenance_gen.generate cfg in
  let m = Graph.n_edges g in
  check_bool "within 2x of target" true (m > 15_000 && m < 60_000)

let test_prov_timestamps_monotone_positive () =
  let g = Provenance_gen.generate prov_small in
  let ok = ref true in
  Graph.iter_edges g (fun ~eid ~src:_ ~dst:_ ~etype:_ ->
      match Graph.eprop g eid "timestamp" with
      | Some (Value.Int t) -> if t <= 0 then ok := false
      | _ -> ok := false);
  check_bool "every edge stamped" true !ok

(* ------------------------------------------------------------------ *)
(* DBLP generator                                                      *)

let dblp_small = Dblp_gen.{ default with authors = 300; pubs = 500; seed = 5 }

let test_dblp_counts () =
  let g = Dblp_gen.generate dblp_small in
  check_int "authors" 300 (Array.length (Graph.vertices_of_type_name g "Author"));
  check_int "pubs" 500 (Array.length (Graph.vertices_of_type_name g "Pub"));
  check_bool "venues" true (Array.length (Graph.vertices_of_type_name g "Venue") > 0)

let test_dblp_mirrored_authorship () =
  (* AUTHORED and HAS_AUTHOR must mirror each other so author-pub-
     author 2-hop paths exist. *)
  let g = Dblp_gen.generate dblp_small in
  let authored = Schema.edge_type_id (Graph.schema g) "AUTHORED" in
  let has_author = Schema.edge_type_id (Graph.schema g) "HAS_AUTHOR" in
  let fwd = Hashtbl.create 256 and bwd = Hashtbl.create 256 in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype ->
      if etype = authored then Hashtbl.replace fwd (src, dst) ()
      else if etype = has_author then Hashtbl.replace bwd (dst, src) ());
  check_int "mirror cardinality" (Hashtbl.length fwd) (Hashtbl.length bwd);
  Hashtbl.iter (fun k () -> if not (Hashtbl.mem bwd k) then Alcotest.fail "unmirrored edge") fwd

let test_dblp_every_pub_has_author_and_venue () =
  let g = Dblp_gen.generate dblp_small in
  let has_author = Schema.edge_type_id (Graph.schema g) "HAS_AUTHOR" in
  let published = Schema.edge_type_id (Graph.schema g) "PUBLISHED_IN" in
  Array.iter
    (fun p ->
      let authors = ref 0 and venues = ref 0 in
      Graph.iter_out g p (fun ~dst:_ ~etype ~eid:_ ->
          if etype = has_author then incr authors else if etype = published then incr venues);
      check_bool "has author" true (!authors >= 1);
      check_int "one venue" 1 !venues)
    (Graph.vertices_of_type_name g "Pub")

(* ------------------------------------------------------------------ *)
(* Power-law generator                                                 *)

let pl_small = Powerlaw_gen.{ default with vertices = 500; edges = 2_500; seed = 3 }

let test_powerlaw_size () =
  let g = Powerlaw_gen.generate pl_small in
  check_int "vertices" 500 (Graph.n_vertices g);
  check_bool "edges near target" true (Graph.n_edges g > 2_000 && Graph.n_edges g <= 2_500)

let test_powerlaw_no_self_loops_or_dups () =
  let g = Powerlaw_gen.generate pl_small in
  let seen = Hashtbl.create 1024 in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype:_ ->
      if src = dst then Alcotest.fail "self loop";
      if Hashtbl.mem seen (src, dst) then Alcotest.fail "duplicate edge";
      Hashtbl.add seen (src, dst) ())

let test_powerlaw_skew () =
  let g = Powerlaw_gen.generate Powerlaw_gen.{ default with vertices = 2_000; edges = 10_000; seed = 3 } in
  let degrees = Graph.all_out_degrees g in
  let dmax = Array.fold_left Stdlib.max 0 degrees in
  let mean = float_of_int (Graph.n_edges g) /. float_of_int (Graph.n_vertices g) in
  check_bool "heavy tail (max >> mean)" true (float_of_int dmax > 8.0 *. mean);
  let alpha, r2 = Kaskade_util.Stats.power_law_fit degrees in
  check_bool "negative power-law slope" true (alpha < -0.8);
  check_bool "reasonable log-log fit" true (r2 > 0.7)

(* ------------------------------------------------------------------ *)
(* Road generator                                                      *)

let road_small = Road_gen.{ default with width = 20; height = 20; seed = 3 }

let test_road_size () =
  let g = Road_gen.generate road_small in
  check_int "vertices" 400 (Graph.n_vertices g);
  check_bool "edges" true (Graph.n_edges g > 0)

let test_road_bounded_degree () =
  let g = Road_gen.generate road_small in
  let dmax = Array.fold_left Stdlib.max 0 (Graph.all_out_degrees g) in
  check_bool "lattice degree <= 4" true (dmax <= 4)

let test_road_symmetric () =
  let g = Road_gen.generate road_small in
  let seen = Hashtbl.create 1024 in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype:_ -> Hashtbl.replace seen (src, dst) ());
  Hashtbl.iter
    (fun (s, d) () -> if not (Hashtbl.mem seen (d, s)) then Alcotest.fail "asymmetric road edge")
    seen

let test_road_not_power_law () =
  let g = Road_gen.generate Road_gen.{ default with width = 40; height = 40; seed = 3 } in
  let _, r2 = Kaskade_util.Stats.power_law_fit (Graph.all_out_degrees g) in
  (* Near-constant degree has nothing resembling a power-law tail;
     contrast with the power-law generator's fit above. *)
  check_bool "no heavy tail" true
    (let dmax = Array.fold_left Stdlib.max 0 (Graph.all_out_degrees g) in
     dmax <= 4 && r2 <= 1.0)

let test_road_edge_lengths () =
  let g = Road_gen.generate road_small in
  let ok = ref true in
  Graph.iter_edges g (fun ~eid ~src:_ ~dst:_ ~etype:_ ->
      match Graph.eprop g eid "length" with
      | Some (Value.Int l) -> if l < 1 || l > 10 then ok := false
      | _ -> ok := false);
  check_bool "length prop in [1,10]" true !ok

let () =
  Alcotest.run "kaskade_gen"
    [
      ( "provenance",
        [
          Alcotest.test_case "counts" `Quick test_prov_counts;
          Alcotest.test_case "deterministic" `Quick test_prov_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prov_seed_changes_graph;
          Alcotest.test_case "every file written" `Quick test_prov_every_file_written;
          Alcotest.test_case "job properties" `Quick test_prov_job_props;
          Alcotest.test_case "no job-job edges" `Quick test_prov_no_job_job_edges;
          Alcotest.test_case "scaled config" `Quick test_prov_scaled;
          Alcotest.test_case "edge timestamps" `Quick test_prov_timestamps_monotone_positive;
        ] );
      ( "dblp",
        [
          Alcotest.test_case "counts" `Quick test_dblp_counts;
          Alcotest.test_case "mirrored authorship" `Quick test_dblp_mirrored_authorship;
          Alcotest.test_case "pub completeness" `Quick test_dblp_every_pub_has_author_and_venue;
        ] );
      ( "powerlaw",
        [
          Alcotest.test_case "size" `Quick test_powerlaw_size;
          Alcotest.test_case "simple digraph" `Quick test_powerlaw_no_self_loops_or_dups;
          Alcotest.test_case "degree skew" `Quick test_powerlaw_skew;
        ] );
      ( "road",
        [
          Alcotest.test_case "size" `Quick test_road_size;
          Alcotest.test_case "bounded degree" `Quick test_road_bounded_degree;
          Alcotest.test_case "symmetric" `Quick test_road_symmetric;
          Alcotest.test_case "uniform degrees" `Quick test_road_not_power_law;
          Alcotest.test_case "edge lengths" `Quick test_road_edge_lengths;
        ] );
    ]
