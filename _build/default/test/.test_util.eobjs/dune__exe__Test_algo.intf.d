test/test_algo.mli:
