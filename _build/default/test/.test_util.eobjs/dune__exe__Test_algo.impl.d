test/test_algo.ml: Alcotest Array Builder Connectivity Degree_dist Graph Hashtbl Kaskade_algo Kaskade_graph Kaskade_util Label_prop List Paths QCheck QCheck_alcotest Schema Stdlib Traverse Value
