test/test_graph.ml: Alcotest Array Builder Filename Gio Graph Gstats Kaskade_gen Kaskade_graph Kaskade_util List Printf QCheck QCheck_alcotest Schema Subgraph Sys Value Vindex
