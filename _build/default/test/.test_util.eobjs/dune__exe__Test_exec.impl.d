test/test_exec.ml: Alcotest Array Builder Cost Executor Graph Gstats Kaskade_exec Kaskade_gen Kaskade_graph Kaskade_query Kaskade_util List Planner Printf QCheck QCheck_alcotest Row Schema Value
