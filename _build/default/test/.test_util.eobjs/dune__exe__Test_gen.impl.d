test/test_gen.ml: Alcotest Array Dblp_gen Graph Hashtbl Kaskade_gen Kaskade_graph Kaskade_util Powerlaw_gen Provenance_gen Road_gen Schema Stdlib Value
