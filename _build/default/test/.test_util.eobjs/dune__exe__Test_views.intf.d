test/test_views.mli:
