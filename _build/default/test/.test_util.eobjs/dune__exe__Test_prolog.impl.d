test/test_prolog.ml: Alcotest Bindings Buffer Db Engine Gen Kaskade_prolog Lexer List Parser Prelude Printf QCheck QCheck_alcotest String Term
