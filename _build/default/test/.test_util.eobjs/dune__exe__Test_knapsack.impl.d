test/test_knapsack.ml: Alcotest Kaskade_knapsack List Printf QCheck QCheck_alcotest String
