test/test_query.ml: Alcotest Analyze Ast Kaskade_gen Kaskade_graph Kaskade_query List Pretty Qlexer Qparser
