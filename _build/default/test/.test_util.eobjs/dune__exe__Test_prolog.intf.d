test/test_prolog.mli:
