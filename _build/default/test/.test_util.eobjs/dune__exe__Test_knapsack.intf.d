test/test_knapsack.mli:
