test/test_util.ml: Alcotest Array Gen Hashtbl Heap Int_vec Kaskade_util List Prng QCheck QCheck_alcotest Stats String Table Union_find
