test/test_gen.mli:
