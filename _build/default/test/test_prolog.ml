open Kaskade_prolog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_engine ?(src = "") () =
  let e = Prelude.engine () in
  if src <> "" then Engine.consult e src;
  e

let first_binding e goal var =
  match Engine.first_solution e goal with
  | Some bindings -> Term.to_string (List.assoc var bindings)
  | None -> "<no solution>"

let all_bindings e goal var =
  List.map (fun b -> Term.to_string (List.assoc var b)) (Engine.all_solutions e goal)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "foo(X, 'Hello World', 42)." in
  check_int "token count" 10 (List.length toks);
  match toks with
  | Lexer.ATOM "foo" :: Lexer.LPAREN :: Lexer.VAR "X" :: Lexer.COMMA :: Lexer.ATOM "Hello World" :: _ ->
    ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_comments () =
  let toks = Lexer.tokenize "a. % line comment\n/* block\ncomment */ b." in
  check_int "comments dropped" 5 (List.length toks)

let test_lexer_operators () =
  let toks = Lexer.tokenize "X is Y + 1" in
  check_bool "has is" true (List.mem (Lexer.ATOM "is") toks);
  check_bool "has plus" true (List.mem (Lexer.ATOM "+") toks)

let test_lexer_quoted_escape () =
  match Lexer.tokenize "'it''s'" with
  | [ Lexer.ATOM "it's"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "quote escape failed"

let test_lexer_error () =
  Alcotest.check_raises "unterminated" (Lexer.Lex_error ("unterminated quoted atom", 0)) (fun () ->
      ignore (Lexer.tokenize "'oops"))

let test_lexer_negative_via_parser () =
  let t, _ = Parser.parse_term "-5" in
  check_string "negative literal" "-5" (Term.to_string t)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parser_fact () =
  let t, _ = Parser.parse_term "edge(a, b)" in
  check_string "fact" "edge(a, b)" (Term.to_string t)

let test_parser_clause () =
  let cs = Parser.parse_program "p(X) :- q(X), r(X)." in
  check_int "one clause" 1 (List.length cs);
  let c = List.hd cs in
  check_string "head" "p(_G0)" (Term.to_string c.Parser.head);
  check_bool "body is conjunction" true
    (match c.Parser.body with Term.Compound (",", _) -> true | _ -> false)

let test_parser_operator_precedence () =
  let t, _ = Parser.parse_term "X is 1 + 2 * 3" in
  match t with
  | Term.Compound ("is", [| _; Term.Compound ("+", [| Term.Int 1; Term.Compound ("*", _) |]) |]) -> ()
  | _ -> Alcotest.fail ("wrong precedence: " ^ Term.to_string t)

let test_parser_left_assoc () =
  let t, _ = Parser.parse_term "1 - 2 - 3" in
  match t with
  | Term.Compound ("-", [| Term.Compound ("-", [| Term.Int 1; Term.Int 2 |]); Term.Int 3 |]) -> ()
  | _ -> Alcotest.fail ("wrong associativity: " ^ Term.to_string t)

let test_parser_lists () =
  let t, _ = Parser.parse_term "[1, 2 | T]" in
  match t with
  | Term.Compound (".", [| Term.Int 1; Term.Compound (".", [| Term.Int 2; Term.Var _ |]) |]) -> ()
  | _ -> Alcotest.fail ("wrong list: " ^ Term.to_string t)

let test_parser_empty_list () =
  let t, _ = Parser.parse_term "[]" in
  check_bool "nil" true (Term.equal t Term.nil)

let test_parser_var_identity () =
  let t, vars = Parser.parse_term "p(X, Y, X)" in
  check_int "two distinct vars" 2 (List.length vars);
  match t with
  | Term.Compound ("p", [| Term.Var a; Term.Var b; Term.Var c |]) ->
    check_bool "X shared" true (a = c);
    check_bool "Y distinct" true (a <> b)
  | _ -> Alcotest.fail "bad term"

let test_parser_anonymous_vars () =
  let t, vars = Parser.parse_term "p(_, _)" in
  check_int "anon not named" 0 (List.length vars);
  match t with
  | Term.Compound ("p", [| Term.Var a; Term.Var b |]) -> check_bool "each _ fresh" true (a <> b)
  | _ -> Alcotest.fail "bad term"

let test_parser_program_multi () =
  let cs = Parser.parse_program "a. b. c(X) :- a, b." in
  check_int "three clauses" 3 (List.length cs)

let test_parser_error () =
  check_bool "raises" true
    (try
       ignore (Parser.parse_program "p(X :- q.");
       false
     with Parser.Parse_error _ -> true)

let test_parser_negation_sugar () =
  let t, _ = Parser.parse_term "\\+ p(X)" in
  match t with Term.Compound ("\\+", _) -> () | _ -> Alcotest.fail "negation parse"

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)

let test_term_list_roundtrip () =
  let items = [ Term.int 1; Term.atom "x"; Term.var 0 ] in
  match Term.to_list (Term.list_of items) with
  | Some back -> check_bool "roundtrip" true (List.for_all2 Term.equal items back)
  | None -> Alcotest.fail "not a list"

let test_term_compare_order () =
  check_bool "var < int" true (Term.compare (Term.var 0) (Term.int 5) < 0);
  check_bool "int < atom" true (Term.compare (Term.int 5) (Term.atom "a") < 0);
  check_bool "atom < compound" true
    (Term.compare (Term.atom "z") (Term.compound "a" [ Term.int 1 ]) < 0)

let test_term_vars_of () =
  let t, _ = Parser.parse_term "f(X, g(Y, X), Z)" in
  check_int "distinct vars" 3 (List.length (Term.vars_of t))

let test_term_rename () =
  let t = Term.compound "f" [ Term.var 0; Term.var 1 ] in
  let r = Term.rename ~offset:10 t in
  check_int "max var" 11 (Term.max_var r)

(* ------------------------------------------------------------------ *)
(* Unification                                                         *)

let test_unify_basic () =
  let b = Bindings.create () in
  check_bool "var binds" true (Bindings.unify b (Term.var 0) (Term.atom "a"));
  check_string "resolved" "a" (Term.to_string (Bindings.resolve b (Term.var 0)))

let test_unify_shared_vars () =
  let b = Bindings.create () in
  let t1 = Term.compound "f" [ Term.var 0; Term.var 0 ] in
  let t2 = Term.compound "f" [ Term.atom "a"; Term.var 1 ] in
  check_bool "unifies" true (Bindings.unify b t1 t2);
  check_string "transitively bound" "a" (Term.to_string (Bindings.resolve b (Term.var 1)))

let test_unify_mismatch () =
  let b = Bindings.create () in
  check_bool "atom clash" false (Bindings.unify b (Term.atom "a") (Term.atom "b"));
  check_bool "arity clash" false
    (Bindings.unify b (Term.compound "f" [ Term.int 1 ]) (Term.compound "f" [ Term.int 1; Term.int 2 ]))

let test_unify_undo () =
  let b = Bindings.create () in
  let m = Bindings.mark b in
  ignore (Bindings.unify b (Term.var 0) (Term.atom "a"));
  Bindings.undo_to b m;
  match Bindings.walk b (Term.var 0) with
  | Term.Var 0 -> ()
  | t -> Alcotest.fail ("binding survived undo: " ^ Term.to_string t)

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)

let family =
  {|
    parent(tom, bob). parent(tom, liz).
    parent(bob, ann). parent(bob, pat).
    parent(pat, jim).
    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
  |}

let test_engine_facts () =
  let e = fresh_engine ~src:family () in
  check_bool "fact holds" true (Engine.holds e "parent(tom, bob)");
  check_bool "fact fails" false (Engine.holds e "parent(bob, tom)")

let test_engine_recursion () =
  let e = fresh_engine ~src:family () in
  let descendants = all_bindings e "ancestor(tom, X)" "X" in
  Alcotest.(check (list string)) "all descendants" [ "bob"; "liz"; "ann"; "pat"; "jim" ] descendants

let test_engine_conjunction_backtracking () =
  let e = fresh_engine ~src:family () in
  let pairs = Engine.all_solutions e "parent(X, Y), parent(Y, Z)" in
  check_int "grandparent pairs" 3 (List.length pairs)

let test_engine_arithmetic () =
  let e = fresh_engine () in
  check_string "is" "7" (first_binding e "X is 1 + 2 * 3" "X");
  check_string "mod" "2" (first_binding e "X is 17 mod 5" "X");
  check_string "neg" "-4" (first_binding e "X is 3 - 7" "X");
  check_string "max" "9" (first_binding e "X is max(4, 9)" "X");
  check_bool "comparison" true (Engine.holds e "3 < 4, 4 =< 4, 5 > 1, 2 >= 2, 3 =:= 3, 3 =\\= 4")

let test_engine_division_by_zero () =
  let e = fresh_engine () in
  check_bool "raises" true
    (try
       ignore (Engine.holds e "X is 1 / 0");
       false
     with Engine.Runtime_error _ -> true)

let test_engine_between () =
  let e = fresh_engine () in
  Alcotest.(check (list string)) "between enumerates" [ "2"; "3"; "4" ]
    (all_bindings e "between(2, 4, X)" "X");
  check_bool "between checks" true (Engine.holds e "between(1, 10, 5)");
  check_bool "between rejects" false (Engine.holds e "between(1, 10, 11)")

let test_engine_negation () =
  let e = fresh_engine ~src:family () in
  check_bool "naf holds" true (Engine.holds e "not(parent(jim, _))");
  check_bool "naf fails" false (Engine.holds e "\\+ parent(tom, bob)");
  check_string "no leak" "tom" (first_binding e "X = tom, \\+ parent(X, jim)" "X")

let test_engine_findall () =
  let e = fresh_engine ~src:family () in
  check_string "findall list" "[bob, liz]" (first_binding e "findall(C, parent(tom, C), L)" "L");
  check_string "findall empty" "[]" (first_binding e "findall(C, parent(jim, C), L)" "L")

let test_engine_setof () =
  let e = fresh_engine ~src:"p(3). p(1). p(3). p(2)." () in
  check_string "sorted dedup" "[1, 2, 3]" (first_binding e "setof(X, p(X), L)" "L");
  check_bool "setof empty fails" false (Engine.holds e "setof(X, q_undefined(X), _)")

let test_engine_setof_witness () =
  let e = fresh_engine ~src:"r(a, 1). r(b, 2). r(a, 3)." () in
  check_string "witness stripped" "[a, b]" (first_binding e "setof(X, Y^r(X, Y), L)" "L")

let test_engine_sort_msort () =
  let e = fresh_engine () in
  check_string "sort dedups" "[1, 2, 3]" (first_binding e "sort([3, 1, 2, 3], L)" "L");
  check_string "msort keeps" "[1, 2, 3, 3]" (first_binding e "msort([3, 1, 2, 3], L)" "L")

let test_engine_length () =
  let e = fresh_engine () in
  check_string "length of list" "3" (first_binding e "length([a, b, c], N)" "N");
  check_bool "length generates" true (Engine.holds e "length(L, 2), L = [a, b]")

let test_engine_if_then_else () =
  let e = fresh_engine ~src:family () in
  check_string "then" "yes" (first_binding e "( parent(tom, bob) -> R = yes ; R = no )" "R");
  check_string "else" "no" (first_binding e "( parent(bob, tom) -> R = yes ; R = no )" "R")

let test_engine_cut () =
  let e = fresh_engine ~src:"first(X) :- member(X, [1, 2, 3]), !." () in
  Alcotest.(check (list string)) "cut stops at first" [ "1" ] (all_bindings e "first(X)" "X")

let test_engine_call_n () =
  let e = fresh_engine ~src:"add(X, Y, Z) :- Z is X + Y." () in
  check_string "call/4" "5" (first_binding e "call(add, 2, 3, Z)" "Z");
  check_string "call partial" "5" (first_binding e "G = add(2), call(G, 3, Z)" "Z")

let test_engine_assertz () =
  let e = fresh_engine () in
  check_bool "assert" true (Engine.holds e "assertz(dynamic_fact(42))");
  check_string "asserted visible" "42" (first_binding e "dynamic_fact(X)" "X")

let test_engine_structural_eq () =
  let e = fresh_engine () in
  check_bool "==" true (Engine.holds e "f(a, 1) == f(a, 1)");
  check_bool "\\== with vars" true (Engine.holds e "X \\== Y");
  check_bool "@< order" true (Engine.holds e "1 @< a, a @< f(a)")

let test_engine_unknown_predicate_fails () =
  let e = fresh_engine () in
  check_bool "silently fails" false (Engine.holds e "totally_unknown(1)")

let test_engine_budget () =
  let db = Prelude.db_with_prelude () in
  Db.load db "loop :- loop.";
  let e = Engine.create ~step_limit:10_000 db in
  check_bool "budget raises" true
    (try
       ignore (Engine.holds e "loop");
       false
     with Engine.Budget_exceeded _ -> true)

let test_engine_steps_counted () =
  let e = fresh_engine ~src:family () in
  Engine.reset_steps e;
  ignore (Engine.all_solutions e "ancestor(tom, X)");
  check_bool "steps > 0" true (Engine.steps e > 0)

let test_engine_atom_concat () =
  let e = fresh_engine () in
  check_string "concat" "foo_2" (first_binding e "atom_concat(foo_, 2, R)" "R")

let test_engine_aggregate_all () =
  let e = fresh_engine ~src:"v(1). v(2). v(3)." () in
  check_string "count" "3" (first_binding e "aggregate_all(count(X), v(X), N)" "N");
  check_string "sum" "6" (first_binding e "aggregate_all(sum(X), v(X), N)" "N")


let test_engine_if_then_no_else () =
  let e = fresh_engine ~src:family () in
  check_bool "then-only succeeds" true (Engine.holds e "( parent(tom, bob) -> true )");
  check_bool "then-only fails" false (Engine.holds e "( parent(bob, tom) -> true )")

let test_engine_nested_findall () =
  let e = fresh_engine ~src:family () in
  check_string "list of lists" "[[ann, pat], []]"
    (first_binding e "findall(L, ( member(P, [bob, liz]), findall(C, parent(P, C), L) ), LS)" "LS")

let test_engine_ite_condition_binds () =
  let e = fresh_engine ~src:family () in
  (* Bindings from the first solution of the condition persist into
     the then-branch. *)
  check_string "cond binding flows" "bob"
    (first_binding e "( parent(tom, X) -> R = X ; R = none )" "R")

let test_engine_deep_recursion_trail () =
  (* A long chain exercises trail growth/undo. *)
  let chain = Buffer.create 1024 in
  for i = 0 to 200 do
    Buffer.add_string chain (Printf.sprintf "e(n%d, n%d). " i (i + 1))
  done;
  Buffer.add_string chain "path(X, Y) :- e(X, Y). path(X, Y) :- e(X, Z), path(Z, Y).";
  let e = fresh_engine ~src:(Buffer.contents chain) () in
  check_bool "long chain reachable" true (Engine.holds e "path(n0, n201)");
  check_bool "unreachable" false (Engine.holds e "path(n201, n0)")

let test_term_pp_quoting () =
  check_string "quoted atom" "'Hello World'" (Term.to_string (Term.atom "Hello World"));
  check_string "plain atom" "abc" (Term.to_string (Term.atom "abc"));
  check_string "operator atom" ":-" (Term.to_string (Term.atom ":-"))

let test_engine_var_goal_error () =
  let e = fresh_engine () in
  check_bool "unbound goal raises" true
    (try ignore (Engine.holds e "X"); false with Engine.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Prelude library predicates                                          *)

let test_prelude_member_append () =
  let e = fresh_engine () in
  Alcotest.(check (list string)) "member" [ "1"; "2"; "3" ] (all_bindings e "member(X, [1, 2, 3])" "X");
  check_string "append" "[1, 2, 3, 4]" (first_binding e "append([1, 2], [3, 4], L)" "L");
  check_int "splits" 4 (List.length (Engine.all_solutions e "append(A, B, [1, 2, 3])"))

let test_prelude_reverse_last_nth () =
  let e = fresh_engine () in
  check_string "reverse" "[3, 2, 1]" (first_binding e "reverse([1, 2, 3], L)" "L");
  check_string "last" "3" (first_binding e "last([1, 2, 3], X)" "X");
  check_string "nth0" "b" (first_binding e "nth0(1, [a, b, c], X)" "X");
  check_string "nth1" "a" (first_binding e "nth1(1, [a, b, c], X)" "X")

let test_prelude_sum_max_min () =
  let e = fresh_engine () in
  check_string "sum_list" "10" (first_binding e "sum_list([1, 2, 3, 4], S)" "S");
  check_string "max_list" "9" (first_binding e "max_list([3, 9, 1], M)" "M");
  check_string "min_list" "1" (first_binding e "min_list([3, 9, 1], M)" "M")

let test_prelude_maplist_foldl () =
  let e = fresh_engine ~src:"double(X, Y) :- Y is 2 * X. plus(X, A, B) :- B is A + X." () in
  check_string "maplist/3" "[2, 4, 6]" (first_binding e "maplist(double, [1, 2, 3], L)" "L");
  check_string "foldl/4" "6" (first_binding e "foldl(plus, [1, 2, 3], 0, S)" "S")

let test_prelude_convlist () =
  let e = fresh_engine ~src:"pos_double(X, Y) :- X > 0, Y is 2 * X." () in
  check_string "convlist drops failures" "[2, 6]"
    (first_binding e "convlist(pos_double, [1, -2, 3], L)" "L")

let test_prelude_include_exclude () =
  let e = fresh_engine ~src:"pos(X) :- X > 0." () in
  check_string "include" "[1, 3]" (first_binding e "include(pos, [1, -2, 3], L)" "L");
  check_string "exclude" "[-2]" (first_binding e "exclude(pos, [1, -2, 3], L)" "L")

let test_prelude_set_ops () =
  let e = fresh_engine () in
  check_string "subtract" "[1, 3]" (first_binding e "subtract([1, 2, 3], [2], L)" "L");
  check_string "intersection" "[2]" (first_binding e "intersection([1, 2, 3], [2, 4], L)" "L");
  check_string "union" "[1, 3, 2, 4]" (first_binding e "union([1, 2, 3], [2, 4], L)" "L")

let test_prelude_numlist_select () =
  let e = fresh_engine () in
  check_string "numlist" "[2, 3, 4]" (first_binding e "numlist(2, 4, L)" "L");
  check_int "select enumerates" 3 (List.length (Engine.all_solutions e "select(X, [1, 2, 3], R)"))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let small_int_list = QCheck.(list_of_size Gen.(0 -- 8) (0 -- 20))

let list_term xs = "[" ^ String.concat ", " (List.map string_of_int xs) ^ "]"

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse twice is identity (via engine)" ~count:50 small_int_list (fun xs ->
      let e = fresh_engine () in
      let goal = Printf.sprintf "reverse(%s, R1), reverse(R1, R2)" (list_term xs) in
      match Engine.first_solution e goal with
      | Some b -> Term.to_string (List.assoc "R2" b) = list_term xs
      | None -> false)

let prop_append_length =
  QCheck.Test.make ~name:"append length adds (via engine)" ~count:50
    (QCheck.pair small_int_list small_int_list) (fun (xs, ys) ->
      let e = fresh_engine () in
      let goal = Printf.sprintf "append(%s, %s, L), length(L, N)" (list_term xs) (list_term ys) in
      match Engine.first_solution e goal with
      | Some b -> Term.to_string (List.assoc "N" b) = string_of_int (List.length xs + List.length ys)
      | None -> false)

let prop_sort_sorted =
  QCheck.Test.make ~name:"sort output is sorted and deduped" ~count:50 small_int_list (fun xs ->
      let e = fresh_engine () in
      match Engine.first_solution e (Printf.sprintf "sort(%s, L)" (list_term xs)) with
      | Some b -> Term.to_string (List.assoc "L" b) = list_term (List.sort_uniq compare xs)
      | None -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_reverse_involution; prop_append_length; prop_sort_sorted ]

let () =
  Alcotest.run "kaskade_prolog"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "quoted escape" `Quick test_lexer_quoted_escape;
          Alcotest.test_case "error" `Quick test_lexer_error;
          Alcotest.test_case "negative int" `Quick test_lexer_negative_via_parser;
        ] );
      ( "parser",
        [
          Alcotest.test_case "fact" `Quick test_parser_fact;
          Alcotest.test_case "clause" `Quick test_parser_clause;
          Alcotest.test_case "precedence" `Quick test_parser_operator_precedence;
          Alcotest.test_case "left assoc" `Quick test_parser_left_assoc;
          Alcotest.test_case "lists" `Quick test_parser_lists;
          Alcotest.test_case "empty list" `Quick test_parser_empty_list;
          Alcotest.test_case "var identity" `Quick test_parser_var_identity;
          Alcotest.test_case "anonymous vars" `Quick test_parser_anonymous_vars;
          Alcotest.test_case "multi clause program" `Quick test_parser_program_multi;
          Alcotest.test_case "parse error" `Quick test_parser_error;
          Alcotest.test_case "negation sugar" `Quick test_parser_negation_sugar;
        ] );
      ( "term",
        [
          Alcotest.test_case "list roundtrip" `Quick test_term_list_roundtrip;
          Alcotest.test_case "standard order" `Quick test_term_compare_order;
          Alcotest.test_case "vars_of" `Quick test_term_vars_of;
          Alcotest.test_case "rename" `Quick test_term_rename;
        ] );
      ( "unify",
        [
          Alcotest.test_case "basic" `Quick test_unify_basic;
          Alcotest.test_case "shared vars" `Quick test_unify_shared_vars;
          Alcotest.test_case "mismatch" `Quick test_unify_mismatch;
          Alcotest.test_case "undo" `Quick test_unify_undo;
        ] );
      ( "engine",
        [
          Alcotest.test_case "facts" `Quick test_engine_facts;
          Alcotest.test_case "recursion" `Quick test_engine_recursion;
          Alcotest.test_case "conjunction backtracking" `Quick test_engine_conjunction_backtracking;
          Alcotest.test_case "arithmetic" `Quick test_engine_arithmetic;
          Alcotest.test_case "division by zero" `Quick test_engine_division_by_zero;
          Alcotest.test_case "between" `Quick test_engine_between;
          Alcotest.test_case "negation" `Quick test_engine_negation;
          Alcotest.test_case "findall" `Quick test_engine_findall;
          Alcotest.test_case "setof" `Quick test_engine_setof;
          Alcotest.test_case "setof with witness" `Quick test_engine_setof_witness;
          Alcotest.test_case "sort/msort" `Quick test_engine_sort_msort;
          Alcotest.test_case "length" `Quick test_engine_length;
          Alcotest.test_case "if-then-else" `Quick test_engine_if_then_else;
          Alcotest.test_case "cut" `Quick test_engine_cut;
          Alcotest.test_case "call/N" `Quick test_engine_call_n;
          Alcotest.test_case "assertz" `Quick test_engine_assertz;
          Alcotest.test_case "structural equality" `Quick test_engine_structural_eq;
          Alcotest.test_case "unknown predicate" `Quick test_engine_unknown_predicate_fails;
          Alcotest.test_case "step budget" `Quick test_engine_budget;
          Alcotest.test_case "steps counted" `Quick test_engine_steps_counted;
          Alcotest.test_case "atom_concat" `Quick test_engine_atom_concat;
          Alcotest.test_case "aggregate_all" `Quick test_engine_aggregate_all;
          Alcotest.test_case "if-then without else" `Quick test_engine_if_then_no_else;
          Alcotest.test_case "nested findall" `Quick test_engine_nested_findall;
          Alcotest.test_case "ite condition binding" `Quick test_engine_ite_condition_binds;
          Alcotest.test_case "deep recursion" `Quick test_engine_deep_recursion_trail;
          Alcotest.test_case "atom quoting" `Quick test_term_pp_quoting;
          Alcotest.test_case "unbound goal" `Quick test_engine_var_goal_error;
        ] );
      ( "prelude",
        [
          Alcotest.test_case "member/append" `Quick test_prelude_member_append;
          Alcotest.test_case "reverse/last/nth" `Quick test_prelude_reverse_last_nth;
          Alcotest.test_case "sum/max/min" `Quick test_prelude_sum_max_min;
          Alcotest.test_case "maplist/foldl" `Quick test_prelude_maplist_foldl;
          Alcotest.test_case "convlist" `Quick test_prelude_convlist;
          Alcotest.test_case "include/exclude" `Quick test_prelude_include_exclude;
          Alcotest.test_case "set operations" `Quick test_prelude_set_ops;
          Alcotest.test_case "numlist/select" `Quick test_prelude_numlist_select;
        ] );
      ("properties", qcheck_cases);
    ]
