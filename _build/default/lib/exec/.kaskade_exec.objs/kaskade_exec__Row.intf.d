lib/exec/row.mli: Format Kaskade_graph
