lib/exec/executor.mli: Kaskade_graph Kaskade_query Row
