lib/exec/planner.ml: Array Ast Gstats Hashtbl Kaskade_graph Kaskade_query List Schema
