lib/exec/cost.ml: Ast Gstats Hashtbl Kaskade_graph Kaskade_query List Schema Stdlib
