lib/exec/planner.mli: Kaskade_graph Kaskade_query
