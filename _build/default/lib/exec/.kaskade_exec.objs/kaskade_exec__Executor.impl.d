lib/exec/executor.ml: Analyze Array Ast Graph Gstats Hashtbl Kaskade_algo Kaskade_graph Kaskade_query Lazy List Option Planner Qparser Row Schema Stdlib String Value Vindex
