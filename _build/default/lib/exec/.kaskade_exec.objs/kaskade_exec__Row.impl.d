lib/exec/row.ml: Array Format Graph Kaskade_graph List Printf Stdlib String Value
