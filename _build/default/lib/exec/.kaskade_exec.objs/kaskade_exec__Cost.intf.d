lib/exec/cost.mli: Kaskade_graph Kaskade_query
