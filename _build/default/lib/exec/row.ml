open Kaskade_graph

type rval = V of int | E of int | Prim of Value.t

type table = { cols : string array; rows : rval array list }

let rval_equal a b =
  match (a, b) with
  | V x, V y -> x = y
  | E x, E y -> x = y
  | Prim x, Prim y -> Value.equal x y
  | _ -> false

let rank = function V _ -> 0 | E _ -> 1 | Prim _ -> 2

let rval_compare a b =
  match (a, b) with
  | V x, V y -> Stdlib.compare x y
  | E x, E y -> Stdlib.compare x y
  | Prim x, Prim y -> Value.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let rval_to_string g = function
  | V v -> begin
    let ty = Graph.vertex_type_name g v in
    match Graph.vprop g v "name" with
    | Some (Value.Str name) -> Printf.sprintf "%s#%d(%s)" ty v name
    | _ -> Printf.sprintf "%s#%d" ty v
  end
  | E e -> Printf.sprintf "edge#%d" e
  | Prim v -> Value.to_string v

let col_index t name =
  let found = ref (-1) in
  Array.iteri (fun i c -> if !found < 0 && String.equal c name then found := i) t.cols;
  if !found < 0 then raise Not_found else !found

let n_rows t = List.length t.rows

let pp g ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " (Array.to_list t.cols));
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@,"
        (String.concat " | " (Array.to_list (Array.map (rval_to_string g) row))))
    (take 20 t.rows);
  if n_rows t > 20 then Format.fprintf ppf "... (%d rows total)@," (n_rows t);
  Format.fprintf ppf "@]"
