(** Runtime values and result tables of the query executor. A value is
    either a graph entity reference (vertex/edge id) or a primitive —
    RETURN can project whole vertices (paper Listing 1:
    [RETURN q_j1 as A]) whose properties outer SELECTs then access. *)

type rval =
  | V of int  (** Vertex reference. *)
  | E of int  (** Edge reference. *)
  | Prim of Kaskade_graph.Value.t

type table = {
  cols : string array;
  rows : rval array list;  (** In result order. *)
}

val rval_equal : rval -> rval -> bool
val rval_compare : rval -> rval -> int
val rval_to_string : Kaskade_graph.Graph.t -> rval -> string
(** Vertices render as [type#id(name)] when a [name] property exists. *)

val col_index : table -> string -> int
(** Raises [Not_found]. *)

val n_rows : table -> int
val pp : Kaskade_graph.Graph.t -> Format.formatter -> table -> unit
(** Render at most 20 rows. *)
