open Kaskade_graph
open Kaskade_query

type estimate = { total_cost : float; match_rows : float }

(* Branching factor when stepping out of a node of (optional) type
   [label]: mean out-degree of that type, or the global mean. At least
   a small epsilon so costs stay monotone in path length. *)
let branching ?(deg_override = fun _ -> None) stats schema label =
  let overridden = match label with Some l -> deg_override l | None -> None in
  let d =
    match overridden with
    | Some d -> d
    | None ->
    match label with
    | Some l -> begin
      match Schema.vertex_type_id schema l with
      | ty -> Gstats.out_degree_mean stats ~vtype:ty
      | exception Not_found -> Gstats.global_out_degree_mean stats
    end
    | None -> Gstats.global_out_degree_mean stats
  in
  Stdlib.max d 0.01

(* Variable-length expansions are BFS whose per-level growth is the
   size-biased mean degree E(d^2)/E(d) — following an edge reaches a
   vertex with probability proportional to its degree, so hubs
   dominate the frontier on skewed graphs. Percentiles miss this
   entirely (95% of a power-law graph's vertices have tiny degrees
   while its hubs carry the walk). *)
let tail_branching ?(deg_override = fun _ -> None) stats schema label =
  let overridden = match label with Some l -> deg_override l | None -> None in
  let d =
    match overridden with
    | Some d -> d
    | None ->
    match label with
    | Some l -> begin
      match Schema.vertex_type_id schema l with
      | ty -> Gstats.out_degree_size_biased stats ~vtype:ty
      | exception Not_found -> Gstats.global_out_degree_size_biased stats
    end
    | None -> Gstats.global_out_degree_size_biased stats
  in
  Stdlib.max d 0.01

let scan_cardinality stats schema label =
  match label with
  | Some l -> begin
    match Schema.vertex_type_id schema l with
    | ty -> float_of_int (Gstats.summary_of_type stats ty).count
    | exception Not_found -> float_of_int (Gstats.total_vertices stats)
  end
  | None -> float_of_int (Gstats.total_vertices stats)

let pattern_cost ?deg_override stats schema ~start_bound (p : Ast.pattern) =
  let cost = ref 0.0 in
  let rows = ref (if start_bound then 1.0 else scan_cardinality stats schema p.p_start.n_label) in
  cost := !cost +. !rows;
  let cur_label = ref p.p_start.n_label in
  List.iter
    (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
      (match e.e_len with
      | Ast.Single ->
        let deg = branching ?deg_override stats schema !cur_label in
        rows := !rows *. deg
      | Ast.Var_length (lo, hi) ->
        (* First step leaves a uniform vertex (mean degree); later
           steps follow edges (size-biased degree). *)
        let mean_deg = branching ?deg_override stats schema !cur_label in
        let tail_deg = tail_branching ?deg_override stats schema !cur_label in
        let hi = Stdlib.min hi 16 in
        let fanout = ref 0.0 in
        let p = ref 1.0 in
        for h = 0 to hi do
          if h >= lo then fanout := !fanout +. !p;
          p := !p *. (if h = 0 then mean_deg else tail_deg)
        done;
        (* Distinct-endpoint expansion is a BFS whose work per row is
           bounded by the graph itself (vertices + edges). *)
        let cap =
          float_of_int (Stdlib.max 1 (Gstats.total_vertices stats + Gstats.total_edges stats))
        in
        rows := !rows *. Stdlib.max (Stdlib.min !fanout cap) 1.0);
      (* A label on the target vertex filters the expansion by the
         share of that type among all vertices. *)
      (match n.n_label with
      | Some l -> begin
        match Schema.vertex_type_id schema l with
        | ty ->
          let share =
            float_of_int (Gstats.summary_of_type stats ty).count
            /. float_of_int (Stdlib.max 1 (Gstats.total_vertices stats))
          in
          (* Typed schemas route edges to their range type, so a
             matching label is closer to a no-op filter; damp rather
             than multiply blindly. *)
          rows := !rows *. Stdlib.max share 0.5
        | exception Not_found -> ()
      end
      | None -> ());
      cost := !cost +. !rows;
      cur_label := n.n_label)
    p.p_steps;
  (!cost, !rows)

let match_cost ?deg_override stats schema (mb : Ast.match_block) =
  (* Patterns chain through shared variables: after the first, a
     pattern whose start variable was bound by an earlier pattern
     resumes per-row instead of rescanning. *)
  let bound = Hashtbl.create 8 in
  let bind_pattern (p : Ast.pattern) =
    (match p.p_start.n_var with Some v -> Hashtbl.replace bound v () | None -> ());
    List.iter
      (fun ((_ : Ast.edge_pat), (n : Ast.node_pat)) ->
        match n.n_var with Some v -> Hashtbl.replace bound v () | None -> ())
      p.p_steps
  in
  let total_cost = ref 0.0 in
  let rows = ref 1.0 in
  List.iter
    (fun (p : Ast.pattern) ->
      let start_bound =
        match p.p_start.n_var with Some v -> Hashtbl.mem bound v | None -> false
      in
      let c, r = pattern_cost ?deg_override stats schema ~start_bound p in
      total_cost := !total_cost +. (!rows *. c);
      rows := !rows *. r;
      bind_pattern p)
    mb.patterns;
  (* WHERE + projection pass. *)
  total_cost := !total_cost +. !rows;
  (!total_cost, !rows)

let rec select_cost ?deg_override stats schema (sb : Ast.select_block) =
  let source_cost, source_rows =
    match sb.from with
    | Ast.From_match mb -> match_cost ?deg_override stats schema mb
    | Ast.From_select inner -> select_cost ?deg_override stats schema inner
  in
  (* Filter + group-by pass over the source rows. *)
  (source_cost +. source_rows, source_rows)

let estimate ?deg_override stats schema q =
  match q with
  | Ast.Match_only mb ->
    let c, r = match_cost ?deg_override stats schema mb in
    { total_cost = c; match_rows = r }
  | Ast.Select sb ->
    let c, r = select_cost ?deg_override stats schema sb in
    { total_cost = c; match_rows = r }
  | Ast.Call _ ->
    (* Analytics procedures scan the whole graph once per pass; treat
       as |V| + |E|. *)
    let n = float_of_int (Gstats.total_vertices stats) in
    let m = float_of_int (Gstats.total_edges stats) in
    { total_cost = n +. m; match_rows = n }

let eval_cost ?deg_override stats schema q = (estimate ?deg_override stats schema q).total_cost
