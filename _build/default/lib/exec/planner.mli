(** Pattern-order optimization — the slice of Neo4j's cost-based
    optimizer the paper relies on ("establishes a reasonable ordering
    between all vertex scans", §V-A). The executor evaluates patterns
    left-to-right starting from each pattern's first node; for queries
    written with an unselective head (e.g.
    [MATCH (a)-[:WRITES_TO]->(f:File)] — an all-vertex scan) a better
    plan anchors at the most selective node and expands outward.

    [optimize] rewrites each pattern chain to start at the node with
    the smallest estimated scan cardinality (a bound variable beats
    every scan; a labelled scan beats an unlabelled one), splitting the
    chain in two at the anchor with the left half reversed — the
    executor's shared-variable chaining then resumes from the bound
    anchor instead of rescanning. The result set is unchanged (property
    tested); only evaluation order differs. *)

val optimize :
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.t ->
  Kaskade_query.Ast.t

val optimize_match :
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.match_block ->
  Kaskade_query.Ast.match_block
(** Exposed for tests. *)

val anchor_position :
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  bound:(string -> bool) ->
  Kaskade_query.Ast.pattern ->
  int
(** Index (0-based, over the chain's nodes) of the chosen anchor. *)
