(** Cardinality-based query cost model — the stand-in for Neo4j's
    cost-based optimizer that the paper uses as its
    [EvalCost(q)] proxy (§V-A). The cost of a query is the sum of
    estimated intermediate result sizes along its MATCH pipeline:
    label scans cost the label cardinality; each single-hop expand
    multiplies by the source type's mean out-degree; a [*lo..hi]
    expand multiplies by [sum over h in lo..hi of deg^h]. Relational
    stages (WHERE / GROUP BY) add a pass over their input. *)

type estimate = {
  total_cost : float;  (** Sum of operator output cardinalities. *)
  match_rows : float;  (** Estimated rows out of the MATCH pipeline. *)
}

val estimate :
  ?deg_override:(string -> float option) ->
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.t ->
  estimate
(** [deg_override label] substitutes the branching factor for vertices
    labelled [label] — how selection prices a query over a view that
    is not materialized yet (e.g. a connector edge whose mean degree
    is estimated-size / source-count). *)

val eval_cost :
  ?deg_override:(string -> float option) ->
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.t ->
  float
(** [(estimate ...).total_cost]. *)
