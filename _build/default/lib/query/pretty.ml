let node_to_string (n : Ast.node_pat) =
  match (n.n_var, n.n_label) with
  | Some v, Some l -> Printf.sprintf "(%s:%s)" v l
  | Some v, None -> Printf.sprintf "(%s)" v
  | None, Some l -> Printf.sprintf "(:%s)" l
  | None, None -> "()"

let edge_to_string (e : Ast.edge_pat) =
  let body =
    let var = Option.value e.e_var ~default:"" in
    let label = match e.e_label with Some l -> ":" ^ l | None -> "" in
    let len =
      match e.e_len with
      | Ast.Single -> ""
      | Ast.Var_length (_, hi) when hi = max_int -> "*"
      | Ast.Var_length (lo, hi) when lo = hi -> Printf.sprintf "*%d" lo
      | Ast.Var_length (lo, hi) -> Printf.sprintf "*%d..%d" lo hi
    in
    var ^ label ^ len
  in
  match e.e_dir with
  | Ast.Fwd -> Printf.sprintf "-[%s]->" body
  | Ast.Bwd -> Printf.sprintf "<-[%s]-" body

let pattern_to_string (p : Ast.pattern) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (node_to_string p.p_start);
  List.iter
    (fun (e, n) ->
      Buffer.add_string buf (edge_to_string e);
      Buffer.add_string buf (node_to_string n))
    p.p_steps;
  Buffer.contents buf

let item_to_string (it : Ast.select_item) =
  match it.alias with
  | Some a when a = "*" -> "*"
  | Some a -> Ast.expr_to_string it.item_expr ^ " AS " ^ a
  | None -> Ast.expr_to_string it.item_expr

let items_to_string items = String.concat ", " (List.map item_to_string items)

let match_to_string (mb : Ast.match_block) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "MATCH ";
  Buffer.add_string buf (String.concat ", " (List.map pattern_to_string mb.patterns));
  (match mb.m_where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ Ast.expr_to_string e)
  | None -> ());
  Buffer.add_string buf (" RETURN " ^ items_to_string mb.returns);
  Buffer.contents buf

let rec select_to_string (sb : Ast.select_block) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    ("SELECT " ^ (if sb.Ast.distinct then "DISTINCT " else "") ^ items_to_string sb.items ^ " FROM (");
  (match sb.from with
  | Ast.From_match mb -> Buffer.add_string buf (match_to_string mb)
  | Ast.From_select inner -> Buffer.add_string buf (select_to_string inner));
  Buffer.add_string buf ")";
  (match sb.s_where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ Ast.expr_to_string e)
  | None -> ());
  (match sb.group_by with
  | [] -> ()
  | gs -> Buffer.add_string buf (" GROUP BY " ^ String.concat ", " (List.map Ast.expr_to_string gs)));
  (match sb.order_by with
  | [] -> ()
  | os ->
    Buffer.add_string buf
      (" ORDER BY "
      ^ String.concat ", "
          (List.map
             (fun (e, dir) ->
               Ast.expr_to_string e ^ (match dir with Ast.Asc -> "" | Ast.Desc -> " DESC"))
             os)));
  (match sb.limit with
  | Some n -> Buffer.add_string buf (" LIMIT " ^ string_of_int n)
  | None -> ());
  Buffer.contents buf

let to_string = function
  | Ast.Select sb -> select_to_string sb
  | Ast.Match_only mb -> match_to_string mb
  | Ast.Call c ->
    Printf.sprintf "CALL %s(%s)" c.proc
      (String.concat ", "
         (List.map
            (fun v ->
              match v with
              | Kaskade_graph.Value.Str s -> "'" ^ s ^ "'"
              | other -> Kaskade_graph.Value.to_string other)
            c.proc_args))
