type node_pat = { n_var : string option; n_label : string option }

type edge_len = Single | Var_length of int * int

type edge_dir = Fwd | Bwd

type edge_pat = {
  e_var : string option;
  e_label : string option;
  e_len : edge_len;
  e_dir : edge_dir;
}

type pattern = { p_start : node_pat; p_steps : (edge_pat * node_pat) list }

type binop = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or
type unop = Neg | Not
type agg = Sum | Avg | Min | Max | Count

type expr =
  | Var of string
  | Prop of string * string
  | Lit of Kaskade_graph.Value.t
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Agg of agg * expr
  | Count_star

type select_item = { item_expr : expr; alias : string option }

type match_block = { patterns : pattern list; m_where : expr option; returns : select_item list }

type sort_dir = Asc | Desc

type source = From_match of match_block | From_select of select_block

and select_block = {
  distinct : bool;
  items : select_item list;
  from : source;
  s_where : expr option;
  group_by : expr list;
  order_by : (expr * sort_dir) list;
  limit : int option;
}

type proc_call = { proc : string; proc_args : Kaskade_graph.Value.t list }

type t = Select of select_block | Match_only of match_block | Call of proc_call

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let agg_name = function Sum -> "SUM" | Avg -> "AVG" | Min -> "MIN" | Max -> "MAX" | Count -> "COUNT"

let rec expr_to_string = function
  | Var v -> v
  | Prop (v, p) -> v ^ "." ^ p
  | Lit (Kaskade_graph.Value.Str s) -> "'" ^ s ^ "'"
  | Lit v -> Kaskade_graph.Value.to_string v
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_symbol op) (expr_to_string b)
  | Unop (Neg, e) -> "(-" ^ expr_to_string e ^ ")"
  | Unop (Not, e) -> "(NOT " ^ expr_to_string e ^ ")"
  | Agg (a, e) -> Printf.sprintf "%s(%s)" (agg_name a) (expr_to_string e)
  | Count_star -> "COUNT(*)"

let item_name i item =
  match item.alias with
  | Some a -> a
  | None -> begin
    match item.item_expr with
    | Var v -> v
    | Prop (v, p) -> v ^ "." ^ p
    | _ -> Printf.sprintf "col%d" i
  end

let rec has_aggregate = function
  | Agg _ | Count_star -> true
  | Binop (_, a, b) -> has_aggregate a || has_aggregate b
  | Unop (_, e) -> has_aggregate e
  | Var _ | Prop _ | Lit _ -> false

let rec map_block f (mb : match_block) = { mb with patterns = List.map f mb.patterns }

and map_source f = function
  | From_match mb -> From_match (map_block f mb)
  | From_select sb -> From_select (map_select f sb)

and map_select f (sb : select_block) = { sb with from = map_source f sb.from }

let map_patterns f = function
  | Select sb -> Select (map_select f sb)
  | Match_only mb -> Match_only (map_block f mb)
  | Call c -> Call c

let rec blocks_of_source = function
  | From_match mb -> [ mb ]
  | From_select sb -> blocks_of_source sb.from

let match_blocks_of = function
  | Select sb -> blocks_of_source sb.from
  | Match_only mb -> [ mb ]
  | Call _ -> []

let patterns_of q = List.concat_map (fun mb -> mb.patterns) (match_blocks_of q)
