(** Render queries back to source text. [parse (to_string q)] is
    structurally equal to [q] (round-trip property tested). Used to
    display rewritten queries (paper Listing 4). *)

val pattern_to_string : Ast.pattern -> string
val match_to_string : Ast.match_block -> string
val to_string : Ast.t -> string
