lib/query/pretty.mli: Ast
