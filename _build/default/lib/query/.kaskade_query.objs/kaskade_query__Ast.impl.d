lib/query/ast.ml: Kaskade_graph List Printf
