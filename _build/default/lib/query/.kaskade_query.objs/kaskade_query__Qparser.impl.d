lib/query/qparser.ml: Ast Format Kaskade_graph List Qlexer String
