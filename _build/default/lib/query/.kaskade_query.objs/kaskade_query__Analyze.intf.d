lib/query/analyze.mli: Ast Kaskade_graph
