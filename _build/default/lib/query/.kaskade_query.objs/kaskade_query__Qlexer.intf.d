lib/query/qlexer.mli:
