lib/query/ast.mli: Kaskade_graph
