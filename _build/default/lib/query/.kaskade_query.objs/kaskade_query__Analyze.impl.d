lib/query/analyze.ml: Ast Format Hashtbl Kaskade_graph List Printf Schema
