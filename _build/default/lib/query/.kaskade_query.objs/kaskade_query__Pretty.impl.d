lib/query/pretty.ml: Ast Buffer Kaskade_graph List Option Printf String
