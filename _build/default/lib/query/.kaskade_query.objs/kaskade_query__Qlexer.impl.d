lib/query/qlexer.ml: Buffer List Printf String
