lib/query/qparser.mli: Ast
