(** Abstract syntax of Kaskade's hybrid query language (paper §III-B):
    Cypher graph patterns for path traversals wrapped in SQL-ish
    relational constructs (SELECT / WHERE / GROUP BY) for filtering
    and aggregation, plus CALL statements for the analytics procedures
    the paper drives through APOC (Q7). *)

type node_pat = {
  n_var : string option;  (** Binding variable, e.g. [q_j1]. *)
  n_label : string option;  (** Vertex type, e.g. [Job]. *)
}

type edge_len =
  | Single
  | Var_length of int * int  (** [*lo..hi] — the paper's [-\[r*0..8\]->]. *)

type edge_dir = Fwd | Bwd

type edge_pat = {
  e_var : string option;
  e_label : string option;  (** Edge type, e.g. [WRITES_TO]. *)
  e_len : edge_len;
  e_dir : edge_dir;
}

type pattern = { p_start : node_pat; p_steps : (edge_pat * node_pat) list }

type binop = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or
type unop = Neg | Not
type agg = Sum | Avg | Min | Max | Count

type expr =
  | Var of string
  | Prop of string * string  (** [a.prop] *)
  | Lit of Kaskade_graph.Value.t
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Agg of agg * expr
  | Count_star

type select_item = { item_expr : expr; alias : string option }

type match_block = {
  patterns : pattern list;
  m_where : expr option;
  returns : select_item list;
}

type sort_dir = Asc | Desc

type source = From_match of match_block | From_select of select_block

and select_block = {
  distinct : bool;
  items : select_item list;
  from : source;
  s_where : expr option;
  group_by : expr list;
  order_by : (expr * sort_dir) list;
  limit : int option;
}

type proc_call = { proc : string; proc_args : Kaskade_graph.Value.t list }

type t =
  | Select of select_block
  | Match_only of match_block
  | Call of proc_call

val item_name : int -> select_item -> string
(** Output column name: the alias if given, otherwise a readable
    rendering of the expression; [int] is the column position used
    for fallback names. *)

val expr_to_string : expr -> string
val has_aggregate : expr -> bool
val map_patterns : (pattern -> pattern) -> t -> t
(** Rewrite every MATCH pattern in place (used by the view-based query
    rewriter). *)

val patterns_of : t -> pattern list
(** All patterns of the outermost MATCH block(s), depth-first. *)

val match_blocks_of : t -> match_block list
