(** Tokenizer for the hybrid query language. Keywords are recognized
    case-insensitively; identifiers keep their case (vertex/edge type
    names are case-sensitive, matching Cypher). *)

type token =
  | IDENT of string
  | KEYWORD of string  (** Uppercased: SELECT, MATCH, WHERE, ... *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | STAR | DOTDOT
  | ARROW_RIGHT      (** [->] *)
  | DASH             (** [-] *)
  | LEFT_ARROW_DASH  (** [<-] *)
  | PLUS | SLASH
  | EQ | NE | LT | LE | GT | GE
  | EOF

exception Lex_error of string * int

val tokenize : string -> token list
val pp_token : token -> string
