open Kaskade_graph

exception Semantic_error of string

type summary = {
  vertex_types : (string * string) list;
  edges : (string * string * string option) list;
  var_length_paths : (string * string * int * int) list;
  returned_vars : string list;
}

let err fmt = Format.kasprintf (fun s -> raise (Semantic_error s)) fmt

(* Anonymous pattern nodes still need identities for the summary. *)
let anon_counter = ref 0

let node_name (n : Ast.node_pat) =
  match n.n_var with
  | Some v -> v
  | None ->
    incr anon_counter;
    Printf.sprintf "_anon%d" !anon_counter

let check schema q =
  anon_counter := 0;
  let vtypes : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let assign var ty =
    match Hashtbl.find_opt vtypes var with
    | Some existing when existing <> ty ->
      err "variable %s used with conflicting types %s and %s" var existing ty
    | Some _ -> ()
    | None -> Hashtbl.add vtypes var ty
  in
  let check_vertex_label = function
    | Some l when not (Schema.has_vertex_type schema l) -> err "unknown vertex type %s" l
    | _ -> ()
  in
  let edges = ref [] in
  let var_paths = ref [] in
  let all_vars = Hashtbl.create 16 in
  let note_var = function Some v -> Hashtbl.replace all_vars v () | None -> () in
  let visit_pattern (p : Ast.pattern) =
    note_var p.p_start.n_var;
    List.iter
      (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
        note_var e.e_var;
        note_var n.n_var)
      p.p_steps;
    check_vertex_label p.p_start.n_label;
    let start_name = node_name p.p_start in
    (match p.p_start.n_label with Some l -> assign start_name l | None -> ());
    let prev = ref (start_name, p.p_start.n_label) in
    List.iter
      (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
        check_vertex_label n.n_label;
        let n_name = node_name n in
        (match n.n_label with Some l -> assign n_name l | None -> ());
        let prev_name, _prev_label = !prev in
        (* Normalize to forward orientation. *)
        let src_var, dst_var =
          match e.e_dir with Ast.Fwd -> (prev_name, n_name) | Ast.Bwd -> (n_name, prev_name)
        in
        (match e.e_len with
        | Ast.Single -> begin
          (match e.e_label with
          | Some l ->
            if not (Schema.has_edge_type schema l) then err "unknown edge type %s" l;
            let etid = Schema.edge_type_id schema l in
            let dom = Schema.vertex_type_name schema (Schema.edge_src schema etid) in
            let rng = Schema.vertex_type_name schema (Schema.edge_dst schema etid) in
            assign src_var dom;
            assign dst_var rng
          | None -> ());
          edges := (src_var, dst_var, e.e_label) :: !edges
        end
        | Ast.Var_length (lo, hi) ->
          if lo < 0 then err "variable-length path lower bound must be >= 0";
          if hi < lo then err "variable-length path upper bound %d below lower bound %d" hi lo;
          (match e.e_label with
          | Some l when not (Schema.has_edge_type schema l) -> err "unknown edge type %s" l
          | _ -> ());
          var_paths := (src_var, dst_var, lo, hi) :: !var_paths);
        prev := (n_name, n.n_label))
      p.p_steps
  in
  let returned = ref [] in
  let visit_match (mb : Ast.match_block) =
    List.iter visit_pattern mb.patterns;
    List.iter
      (fun (it : Ast.select_item) ->
        match it.item_expr with
        | Ast.Var v -> returned := v :: !returned
        | _ -> ())
      mb.returns
  in
  List.iter visit_match (Ast.match_blocks_of q);
  (* Referenced-variable checks inside MATCH RETURN / WHERE: every Var
     must be a pattern variable. *)
  let known v = Hashtbl.mem all_vars v in
  List.iter
    (fun (mb : Ast.match_block) ->
      List.iter
        (fun (it : Ast.select_item) ->
          match it.item_expr with
          | Ast.Var v when not (known v) -> err "RETURN references unbound variable %s" v
          | _ -> ())
        mb.returns)
    (Ast.match_blocks_of q);
  {
    vertex_types = Hashtbl.fold (fun k v acc -> (k, v) :: acc) vtypes [] |> List.sort compare;
    edges = List.rev !edges;
    var_length_paths = List.rev !var_paths;
    returned_vars = List.rev !returned;
  }

let infer_vertex_type summary var = List.assoc_opt var summary.vertex_types
