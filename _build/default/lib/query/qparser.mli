(** Recursive-descent parser for the hybrid query language. Accepts
    the paper's Listing 1/4 style: SQL SELECT blocks whose FROM source
    is either a nested SELECT or a Cypher MATCH block; patterns inside
    a MATCH may be separated by commas or juxtaposed. *)

exception Parse_error of string

val parse : string -> Ast.t
val parse_expr : string -> Ast.expr
(** For tests. *)
