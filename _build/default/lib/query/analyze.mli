(** Semantic analysis of a query against a graph schema: label
    existence, domain/range compatibility of edge patterns, consistent
    variable usage — plus the typed pattern summary that Kaskade's
    constraint miner turns into Prolog facts (paper §IV-A1). *)

exception Semantic_error of string

type summary = {
  vertex_types : (string * string) list;
      (** Pattern variable -> vertex type, declared or inferred from
          adjacent edge labels. Variables whose type cannot be pinned
          down are absent. *)
  edges : (string * string * string option) list;
      (** Single-hop pattern edges as (src_var, dst_var, edge_type),
          normalized to forward direction. *)
  var_length_paths : (string * string * int * int) list;
      (** (src_var, dst_var, lo, hi) for every variable-length pattern
          edge, normalized to forward direction. *)
  returned_vars : string list;
      (** Vertex variables projected out of the innermost MATCH. *)
}

val check : Kaskade_graph.Schema.t -> Ast.t -> summary
(** Validate and summarize; raises {!Semantic_error} with a readable
    message on the first violation. *)

val infer_vertex_type : summary -> string -> string option
