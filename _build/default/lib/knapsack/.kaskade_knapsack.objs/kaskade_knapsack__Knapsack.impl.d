lib/knapsack/knapsack.ml: Array Hashtbl List Stdlib
