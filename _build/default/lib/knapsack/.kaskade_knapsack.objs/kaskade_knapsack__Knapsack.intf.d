lib/knapsack/knapsack.mli:
