(** 0-1 knapsack solvers, replacing the Google OR-tools
    branch-and-bound solver the paper uses for view selection (§V-B:
    items = candidate views, weight = estimated size, value =
    performance improvement / creation cost, capacity = space
    budget). *)

type item = { id : int; weight : int; value : float }

type solution = {
  chosen : int list;  (** Item ids, ascending. *)
  total_weight : int;
  total_value : float;
}

val solve_branch_and_bound : ?node_limit:int -> capacity:int -> item list -> solution
(** Exact best-first branch and bound with the fractional-relaxation
    upper bound. [node_limit] (default 1_000_000) caps the search; on
    hitting the cap the best solution found so far is returned (it is
    always feasible). Items with non-positive value are never chosen;
    items heavier than the capacity are skipped. *)

val solve_dp : capacity:int -> item list -> solution
(** Exact dynamic program, O(n * capacity) — intended for modest
    capacities and for cross-checking the branch-and-bound solver in
    tests. *)

val solve_greedy : capacity:int -> item list -> solution
(** Density-ordered greedy heuristic (the classical lower bound);
    used as an ablation baseline for the selection experiment. *)
