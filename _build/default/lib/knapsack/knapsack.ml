type item = { id : int; weight : int; value : float }

type solution = { chosen : int list; total_weight : int; total_value : float }

let empty_solution = { chosen = []; total_weight = 0; total_value = 0.0 }

let finish chosen items =
  let by_id = Hashtbl.create 16 in
  List.iter (fun it -> Hashtbl.replace by_id it.id it) items;
  let chosen = List.sort_uniq compare chosen in
  let total_weight = List.fold_left (fun acc id -> acc + (Hashtbl.find by_id id).weight) 0 chosen in
  let total_value = List.fold_left (fun acc id -> acc +. (Hashtbl.find by_id id).value) 0.0 chosen in
  { chosen; total_weight; total_value }

let viable ~capacity items =
  List.filter (fun it -> it.value > 0.0 && it.weight <= capacity && it.weight >= 0) items

let density it = if it.weight <= 0 then infinity else it.value /. float_of_int it.weight

let by_density items = List.sort (fun a b -> compare (density b) (density a)) items

(* Fractional-relaxation bound for the suffix starting at [idx]. *)
let fractional_bound sorted idx remaining_cap =
  let n = Array.length sorted in
  let rec go i cap acc =
    if i >= n || cap <= 0 then acc
    else begin
      let it = sorted.(i) in
      if it.weight <= cap then go (i + 1) (cap - it.weight) (acc +. it.value)
      else acc +. (density it *. float_of_int cap)
    end
  in
  go idx remaining_cap 0.0

let solve_greedy ~capacity items =
  let items = viable ~capacity items in
  let sorted = by_density items in
  let _, chosen =
    List.fold_left
      (fun (cap, acc) it -> if it.weight <= cap then (cap - it.weight, it.id :: acc) else (cap, acc))
      (capacity, []) sorted
  in
  finish chosen items

let solve_dp ~capacity items =
  if capacity < 0 then invalid_arg "Knapsack.solve_dp: negative capacity";
  let items = viable ~capacity items in
  let arr = Array.of_list items in
  let n = Array.length arr in
  (* Full table: best.(i).(w) = best value using items 0..i-1 within
     weight w. Memory O(n * capacity) — this solver is the testing
     oracle; selection at scale uses branch and bound. *)
  let best = Array.make_matrix (n + 1) (capacity + 1) 0.0 in
  for i = 1 to n do
    let it = arr.(i - 1) in
    for w = 0 to capacity do
      let without = best.(i - 1).(w) in
      let with_item =
        if it.weight <= w then best.(i - 1).(w - it.weight) +. it.value else neg_infinity
      in
      best.(i).(w) <- Stdlib.max without with_item
    done
  done;
  let chosen = ref [] in
  let w = ref capacity in
  for i = n downto 1 do
    if best.(i).(!w) > best.(i - 1).(!w) then begin
      chosen := arr.(i - 1).id :: !chosen;
      w := !w - arr.(i - 1).weight
    end
  done;
  finish !chosen items

exception Done

let solve_branch_and_bound ?(node_limit = 1_000_000) ~capacity items =
  if capacity < 0 then invalid_arg "Knapsack.solve_branch_and_bound: negative capacity";
  let items = viable ~capacity items in
  if items = [] then empty_solution
  else begin
    let sorted = Array.of_list (by_density items) in
    let n = Array.length sorted in
    let best_value = ref 0.0 in
    let best_chosen = ref [] in
    let nodes = ref 0 in
    (* Depth-first with bound pruning; density order makes the greedy
       branch first, so good incumbents appear early. *)
    let rec go i cap value chosen =
      incr nodes;
      if !nodes > node_limit then raise Done;
      if value > !best_value then begin
        best_value := value;
        best_chosen := chosen
      end;
      if i < n then begin
        let bound = value +. fractional_bound sorted i cap in
        if bound > !best_value then begin
          let it = sorted.(i) in
          if it.weight <= cap then go (i + 1) (cap - it.weight) (value +. it.value) (it.id :: chosen);
          go (i + 1) cap value chosen
        end
      end
    in
    (try go 0 capacity 0.0 [] with Done -> ());
    finish !best_chosen items
  end
