open Kaskade_graph

let defining_query schema (view : View.t) =
  match view with
  | View.Connector (View.K_hop { src_type; dst_type; k }) ->
    Some (Printf.sprintf "MATCH (a:%s)-[r*%d..%d]->(b:%s) RETURN a, b" src_type k k dst_type)
  | View.Connector (View.Same_vertex_type { vtype }) ->
    Some (Printf.sprintf "MATCH (a:%s)-[r*1..%d]->(b:%s) RETURN a, b" vtype max_int vtype)
  | View.Connector (View.Same_edge_type { etype }) -> begin
    match Schema.edge_type_id schema etype with
    | etid ->
      let src = Schema.vertex_type_name schema (Schema.edge_src schema etid) in
      let dst = Schema.vertex_type_name schema (Schema.edge_dst schema etid) in
      Some (Printf.sprintf "MATCH (a:%s)-[r:%s*]->(b:%s) RETURN a, b" src etype dst)
    | exception Not_found -> None
  end
  | View.Connector View.Source_to_sink ->
    (* Needs in-degree/out-degree predicates, which the language does
       not expose. *)
    None
  | View.Summarizer (View.Vertex_inclusion types) ->
    (* One scan per kept type; the language has no UNION, so emit the
       per-type scans joined by ';' for callers that execute each. *)
    Some (String.concat "; " (List.map (fun t -> Printf.sprintf "MATCH (n:%s) RETURN n" t) types))
  | View.Summarizer (View.Edge_inclusion types) ->
    Some
      (String.concat "; "
         (List.map (fun t -> Printf.sprintf "MATCH (a)-[e:%s]->(b) RETURN a, e, b" t) types))
  | View.Summarizer
      ( View.Vertex_removal _ | View.Edge_removal _ | View.Vertex_aggregator _
      | View.Subgraph_aggregator _ | View.Ego_aggregator _ ) ->
    (* Removals need negation over types; aggregators need grouping
       into supernodes — both outside the pattern language. *)
    None
