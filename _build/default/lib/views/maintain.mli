(** Incremental maintenance of 2-hop connector views — the extension
    the paper defers to its lineage (Zhuge & Garcia-Molina, ICDE'98:
    "Graph structured views and their incremental maintenance").

    When an edge (u, v) is inserted into the base graph, the only new
    k=2 contracted paths are those that use it: [u' -> u -> v] for
    in-neighbours [u'] of [u], and [u -> v -> v'] for out-neighbours
    [v'] of [v]. The delta is therefore computable in
    O(indeg(u) + outdeg(v)) without touching the rest of the view —
    compared to the full O(sum indeg*outdeg) rebuild. *)

type delta = {
  added : (int * int) list;
      (** New connector edges as (src, dst) pairs in *base-graph* ids;
          deduplicated, and already-present pairs are excluded. *)
}

val delta_of_insert :
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  src:int ->
  dst:int ->
  delta
(** [delta_of_insert base ~view ~src ~dst] — connector edges that
    inserting base edge (src, dst) creates for a k=2 connector view.
    Raises [Invalid_argument] if the view is not a k=2 connector. The
    edge itself must NOT yet be present in [base] (the delta is
    computed against the pre-insertion adjacency). *)

val apply :
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  src:int ->
  dst:int ->
  Materialize.materialized
(** Refreshed view: the delta's edges are appended to the view graph
    (vertices and properties preserved; new endpoint vertices are
    added if the inserted edge touches base vertices absent from the
    view). The result satisfies: apply = full re-materialization over
    the updated base graph, up to edge order (property tested). *)

val delta_of_delete :
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  src:int ->
  dst:int ->
  delta
(** Connector edges that deleting ONE base edge (src, dst) destroys:
    an affected pair is removed only when no alternative 2-hop path
    supports it (parallel edges counted exactly). [base] must still
    contain the edge (the delta is computed against pre-deletion
    adjacency); the [delta]'s [added] list holds the pairs to REMOVE. *)

val apply_delete :
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  src:int ->
  dst:int ->
  Materialize.materialized
(** Refreshed view with the doomed connector edges dropped. Equal to
    re-materializing over the base graph minus the edge (property
    tested). *)
