lib/views/maintain.ml: Array Builder Graph Hashtbl Kaskade_graph List Materialize Schema Stdlib View
