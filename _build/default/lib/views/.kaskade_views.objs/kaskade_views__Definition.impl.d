lib/views/definition.ml: Kaskade_graph List Printf Schema String View
