lib/views/view.ml: List Printf String
