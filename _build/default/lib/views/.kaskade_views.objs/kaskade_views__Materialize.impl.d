lib/views/materialize.ml: Array Builder Graph Hashtbl Kaskade_algo Kaskade_graph Kaskade_util List Schema String Subgraph Value View
