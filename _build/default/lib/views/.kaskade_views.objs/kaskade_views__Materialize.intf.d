lib/views/materialize.mli: Kaskade_graph View
