lib/views/catalog.mli: Kaskade_graph Materialize View
