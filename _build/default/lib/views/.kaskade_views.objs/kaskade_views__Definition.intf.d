lib/views/definition.mli: Kaskade_graph View
