lib/views/catalog.ml: Graph Hashtbl Kaskade_graph List Materialize View
