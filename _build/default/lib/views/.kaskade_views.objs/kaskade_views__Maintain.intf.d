lib/views/maintain.mli: Kaskade_graph Materialize
