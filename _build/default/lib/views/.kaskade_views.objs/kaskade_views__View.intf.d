lib/views/view.mli:
