open Kaskade_graph

type entry = {
  materialized : Materialize.materialized;
  size_edges : int;
  size_vertices : int;
}

type t = { base : Graph.t; entries : (string, entry) Hashtbl.t }

let create base = { base; entries = Hashtbl.create 16 }
let base t = t.base

let add t (m : Materialize.materialized) =
  let entry =
    {
      materialized = m;
      size_edges = Graph.n_edges m.graph;
      size_vertices = Graph.n_vertices m.graph;
    }
  in
  Hashtbl.replace t.entries (View.name m.view) entry

let find_by_name t name = Hashtbl.find_opt t.entries name
let find t view = find_by_name t (View.name view)
let mem t view = Hashtbl.mem t.entries (View.name view)

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> View.compare a.materialized.view b.materialized.view)

let total_size_edges t = Hashtbl.fold (fun _ e acc -> acc + e.size_edges) t.entries 0

let remove t view = Hashtbl.remove t.entries (View.name view)
