(** Registry of materialized views over one base graph — what the
    paper's execution engine consults during view-based query
    rewriting (§V-C: "pruning those it has not materialized"). *)

type entry = {
  materialized : Materialize.materialized;
  size_edges : int;
  size_vertices : int;
}

type t

val create : Kaskade_graph.Graph.t -> t
val base : t -> Kaskade_graph.Graph.t

val add : t -> Materialize.materialized -> unit
(** Replaces any previous entry for the same view name. *)

val find : t -> View.t -> entry option
val find_by_name : t -> string -> entry option
val mem : t -> View.t -> bool
val entries : t -> entry list
(** Sorted by view name. *)

val total_size_edges : t -> int
val remove : t -> View.t -> unit
