(** Graph-view descriptors: the two classes the paper identifies
    (§III-C, §VI) — connectors (path contractions, Table I) and
    summarizers (filters and aggregators, Table II). A descriptor is a
    logical definition; {!Materialize} turns it into a physical graph. *)

type connector =
  | K_hop of { src_type : string; dst_type : string; k : int }
      (** Edge per (pair of vertices connected by a k-length path).
          The same-vertex-type k-hop connector of the paper is the
          [src_type = dst_type] case. *)
  | Same_vertex_type of { vtype : string }
      (** Variable-length: edge per pair of same-type vertices
          connected by any directed path (transitive closure
          restricted to one type). *)
  | Same_edge_type of { etype : string }
      (** Edge per pair of vertices connected by a path made of one
          edge type only. *)
  | Source_to_sink
      (** Edge per (source, sink) pair connected by a path, where
          sources have no in-edges and sinks no out-edges. *)

type aggregate_fn = Agg_sum | Agg_count | Agg_min | Agg_max

type summarizer =
  | Vertex_inclusion of string list  (** Keep these vertex types, and
      edges whose endpoints both survive. *)
  | Vertex_removal of string list
  | Edge_inclusion of string list  (** Keep only these edge types
      (all vertices survive). *)
  | Edge_removal of string list
  | Vertex_aggregator of { vtype : string; group_prop : string; agg_prop : string; agg : aggregate_fn }
      (** Group same-type vertices by a property value into
          supervertices; other types pass through. *)
  | Subgraph_aggregator of { agg_prop : string; agg : aggregate_fn }
      (** Contract every weakly-connected subgraph into a supervertex
          (paper Table II, groups chosen by a predicate — here by
          component). *)
  | Ego_aggregator of { k : int; agg_prop : string; agg : aggregate_fn }
      (** Paper Listing 5's [kHopNborsAggregator]: annotate every
          vertex with the aggregate of [agg_prop] over its undirected
          k-hop neighbourhood (topology unchanged; the result lands in
          property [ego_<AGG>_<prop>]). *)

type t = Connector of connector | Summarizer of summarizer

val name : t -> string
(** Deterministic, filesystem/Cypher-safe identifier, e.g.
    [JOB_TO_JOB_2HOP] or [KEEP_JOB_FILE]. Two structurally equal views
    share a name. *)

val connector_edge_type : connector -> string
(** Name of the contracted-edge type a connector view introduces. *)

val agg_name : aggregate_fn -> string
(** "SUM" | "COUNT" | "MIN" | "MAX". *)

val describe : t -> string
(** Human-readable one-liner (bench output, catalogs). *)

val equal : t -> t -> bool
val compare : t -> t -> int
