open Kaskade_graph

type delta = { added : (int * int) list }

let connector_types (view : Materialize.materialized) =
  match view.Materialize.view with
  | View.Connector (View.K_hop { src_type; dst_type; k = 2 }) -> (src_type, dst_type)
  | v ->
    invalid_arg
      ("Maintain: incremental maintenance only supports k=2 connectors, got " ^ View.name v)

let delta_of_insert base ~view ~src ~dst =
  let src_type, dst_type = connector_types view in
  let schema = Graph.schema base in
  let src_ty = Schema.vertex_type_id schema src_type in
  let dst_ty = Schema.vertex_type_id schema dst_type in
  let vg = view.Materialize.graph in
  let new_of_old = view.Materialize.new_of_old in
  (* Existing connector pairs involving the affected endpoints, for
     dedup (also in base ids). *)
  let existing = Hashtbl.create 64 in
  let note_existing old_u =
    if old_u >= 0 && old_u < Array.length new_of_old && new_of_old.(old_u) >= 0 then
      Graph.iter_out vg new_of_old.(old_u) (fun ~dst:w ~etype:_ ~eid:_ ->
          (* Map the view-vertex back to a base id by scanning is
             avoided: record pairs keyed on view ids instead. *)
          Hashtbl.replace existing (new_of_old.(old_u), w) ())
  in
  let pair_exists u w =
    u < Array.length new_of_old && w < Array.length new_of_old
    && new_of_old.(u) >= 0 && new_of_old.(w) >= 0
    && Hashtbl.mem existing (new_of_old.(u), new_of_old.(w))
  in
  let added = ref [] in
  let seen = Hashtbl.create 16 in
  let emit u w =
    if not (Hashtbl.mem seen (u, w)) then begin
      Hashtbl.add seen (u, w) ();
      if not (pair_exists u w) then added := (u, w) :: !added
    end
  in
  (* Paths u' -> src -> dst (dst must have the connector's range type). *)
  if Graph.vertex_type base dst = dst_ty then begin
    Graph.iter_in base src (fun ~src:u' ~etype:_ ~eid:_ ->
        if Graph.vertex_type base u' = src_ty then begin
          note_existing u';
          emit u' dst
        end)
  end;
  (* Paths src -> dst -> v' (src must have the domain type). *)
  if Graph.vertex_type base src = src_ty then begin
    note_existing src;
    Graph.iter_out base dst (fun ~dst:v' ~etype:_ ~eid:_ ->
        if Graph.vertex_type base v' = dst_ty then emit src v')
  end;
  { added = List.rev !added }

(* Multiplicity of base edges a -> b. *)
let edge_count base a b =
  let c = ref 0 in
  Graph.iter_out base a (fun ~dst ~etype:_ ~eid:_ -> if dst = b then incr c);
  !c

(* 2-walk support of the pair (a, b) after removing one (u, v) edge
   instance: sum over mids of cnt(a -> mid) * cnt(mid -> b), with the
   deleted instance discounted. *)
let support_without base ~a ~b ~u ~v =
  let total = ref 0 in
  let mids = Hashtbl.create 8 in
  Graph.iter_out base a (fun ~dst:mid ~etype:_ ~eid:_ ->
      if not (Hashtbl.mem mids mid) then begin
        Hashtbl.add mids mid ();
        let out = edge_count base mid b in
        let inc = edge_count base a mid in
        (* One (u, v) instance vanishes: discount the walks that used
           it as first hop (a = u, mid = v) or as second hop (mid = u,
           b = v). Both at once needs u = v, which a contracted 2-path
           cannot have. *)
        let through_deleted =
          if a = u && mid = v then out else if mid = u && b = v then inc else 0
        in
        total := !total + (inc * out) - through_deleted
      end);
  !total

let delta_of_delete base ~view ~src ~dst =
  let src_type, dst_type = connector_types view in
  let schema = Graph.schema base in
  let src_ty = Schema.vertex_type_id schema src_type in
  let dst_ty = Schema.vertex_type_id schema dst_type in
  let removed = ref [] in
  let seen = Hashtbl.create 16 in
  let consider a b =
    if (not (Hashtbl.mem seen (a, b)))
       && Graph.vertex_type base a = src_ty
       && Graph.vertex_type base b = dst_ty
    then begin
      Hashtbl.add seen (a, b) ();
      if support_without base ~a ~b ~u:src ~v:dst <= 0 then removed := (a, b) :: !removed
    end
  in
  (* Pairs whose 2-paths could use the deleted edge as second hop. *)
  if Graph.vertex_type base dst = dst_ty then
    Graph.iter_in base src (fun ~src:a ~etype:_ ~eid:_ -> consider a dst);
  (* ... or as first hop. *)
  if Graph.vertex_type base src = src_ty then
    Graph.iter_out base dst (fun ~dst:b ~etype:_ ~eid:_ -> consider src b);
  { added = List.rev !removed }

let apply_delete base ~view ~src ~dst =
  let d = delta_of_delete base ~view ~src ~dst in
  let doomed = Hashtbl.create 8 in
  let new_of_old = view.Materialize.new_of_old in
  List.iter
    (fun (a, b) ->
      if a < Array.length new_of_old && b < Array.length new_of_old
         && new_of_old.(a) >= 0 && new_of_old.(b) >= 0
      then Hashtbl.replace doomed (new_of_old.(a), new_of_old.(b)) ())
    d.added;
  let vg = view.Materialize.graph in
  let b = Builder.create (Graph.schema vg) in
  for v = 0 to Graph.n_vertices vg - 1 do
    ignore (Builder.add_vertex b ~vtype:(Graph.vertex_type_name vg v) ~props:(Graph.vertex_props vg v) ())
  done;
  Graph.iter_edges vg (fun ~eid ~src:s ~dst:t ~etype ->
      if not (Hashtbl.mem doomed (s, t)) then
        ignore
          (Builder.add_edge b ~src:s ~dst:t ~etype:(Schema.edge_type_name (Graph.schema vg) etype)
             ~props:(Graph.edge_props vg eid) ()));
  { view with Materialize.graph = Graph.freeze b }

let apply base ~view ~src ~dst =
  let src_type, dst_type = connector_types view in
  let d = delta_of_insert base ~view ~src ~dst in
  let vg = view.Materialize.graph in
  let edge_name = View.connector_edge_type (View.K_hop { src_type; dst_type; k = 2 }) in
  (* Rebuild a builder from the existing view graph, then append. *)
  let b = Builder.create (Graph.schema vg) in
  for v = 0 to Graph.n_vertices vg - 1 do
    ignore (Builder.add_vertex b ~vtype:(Graph.vertex_type_name vg v) ~props:(Graph.vertex_props vg v) ())
  done;
  Graph.iter_edges vg (fun ~eid ~src:s ~dst:t ~etype ->
      ignore
        (Builder.add_edge b ~src:s ~dst:t ~etype:(Schema.edge_type_name (Graph.schema vg) etype)
           ~props:(Graph.edge_props vg eid) ()));
  (* Grow the id mapping if needed and make sure the delta's endpoints
     exist in the view. *)
  let n_base = Graph.n_vertices base in
  let new_of_old = Array.make n_base (-1) in
  Array.blit view.Materialize.new_of_old 0 new_of_old 0
    (Stdlib.min n_base (Array.length view.Materialize.new_of_old));
  let ensure_vertex old_v =
    if new_of_old.(old_v) < 0 then begin
      let id =
        Builder.add_vertex b ~vtype:(Graph.vertex_type_name base old_v)
          ~props:(Graph.vertex_props base old_v) ()
      in
      new_of_old.(old_v) <- id
    end;
    new_of_old.(old_v)
  in
  List.iter
    (fun (u, w) ->
      let u' = ensure_vertex u and w' = ensure_vertex w in
      ignore (Builder.add_edge b ~src:u' ~dst:w' ~etype:edge_name ()))
    d.added;
  {
    view with
    Materialize.graph = Graph.freeze b;
    new_of_old;
    build_cost = view.Materialize.build_cost +. float_of_int (List.length d.added);
  }
