(** Defining queries for views. The paper defines a graph view as "the
    graph query Q to be executed against G" (§III-C) and Kaskade's
    workload analyzer "translates those views to Cypher and executes
    them against the graph to perform the actual materialization"
    (§V-B). This module produces that query text; the test suite
    checks that evaluating it returns exactly the edge set
    {!Materialize} builds. *)

val defining_query : Kaskade_graph.Schema.t -> View.t -> string option
(** The query whose result rows are the view's edges (for connectors:
    one row per contracted (src, dst) pair) or vertices (for
    inclusion summarizers). [None] for views whose definition is not
    expressible in the query language (aggregators, source-to-sink —
    these need degree predicates the language does not have). *)
