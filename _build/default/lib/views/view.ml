type connector =
  | K_hop of { src_type : string; dst_type : string; k : int }
  | Same_vertex_type of { vtype : string }
  | Same_edge_type of { etype : string }
  | Source_to_sink

type aggregate_fn = Agg_sum | Agg_count | Agg_min | Agg_max

type summarizer =
  | Vertex_inclusion of string list
  | Vertex_removal of string list
  | Edge_inclusion of string list
  | Edge_removal of string list
  | Vertex_aggregator of { vtype : string; group_prop : string; agg_prop : string; agg : aggregate_fn }
  | Subgraph_aggregator of { agg_prop : string; agg : aggregate_fn }
  | Ego_aggregator of { k : int; agg_prop : string; agg : aggregate_fn }

type t = Connector of connector | Summarizer of summarizer

let upper = String.uppercase_ascii

let agg_name = function Agg_sum -> "SUM" | Agg_count -> "COUNT" | Agg_min -> "MIN" | Agg_max -> "MAX"

let connector_edge_type = function
  | K_hop { src_type; dst_type; k } -> Printf.sprintf "%s_TO_%s_%dHOP" (upper src_type) (upper dst_type) k
  | Same_vertex_type { vtype } -> Printf.sprintf "%s_TO_%s_PATH" (upper vtype) (upper vtype)
  | Same_edge_type { etype } -> Printf.sprintf "%s_PATH" (upper etype)
  | Source_to_sink -> "SOURCE_TO_SINK"

let name = function
  | Connector c -> connector_edge_type c
  | Summarizer s -> begin
    match s with
    | Vertex_inclusion types -> "KEEP_V_" ^ String.concat "_" (List.map upper types)
    | Vertex_removal types -> "DROP_V_" ^ String.concat "_" (List.map upper types)
    | Edge_inclusion types -> "KEEP_E_" ^ String.concat "_" (List.map upper types)
    | Edge_removal types -> "DROP_E_" ^ String.concat "_" (List.map upper types)
    | Vertex_aggregator { vtype; group_prop; agg_prop; agg } ->
      Printf.sprintf "AGG_V_%s_BY_%s_%s_%s" (upper vtype) (upper group_prop) (agg_name agg)
        (upper agg_prop)
    | Subgraph_aggregator { agg_prop; agg } ->
      Printf.sprintf "AGG_SUBGRAPH_%s_%s" (agg_name agg) (upper agg_prop)
    | Ego_aggregator { k; agg_prop; agg } ->
      Printf.sprintf "EGO_%dHOP_%s_%s" k (agg_name agg) (upper agg_prop)
  end

let describe = function
  | Connector (K_hop { src_type; dst_type; k }) ->
    Printf.sprintf "%d-hop connector (%s-to-%s)" k src_type dst_type
  | Connector (Same_vertex_type { vtype }) ->
    Printf.sprintf "same-vertex-type connector (%s, any path length)" vtype
  | Connector (Same_edge_type { etype }) ->
    Printf.sprintf "same-edge-type connector (:%s paths)" etype
  | Connector Source_to_sink -> "source-to-sink connector"
  | Summarizer (Vertex_inclusion types) ->
    "vertex-inclusion summarizer keeping {" ^ String.concat ", " types ^ "}"
  | Summarizer (Vertex_removal types) ->
    "vertex-removal summarizer dropping {" ^ String.concat ", " types ^ "}"
  | Summarizer (Edge_inclusion types) ->
    "edge-inclusion summarizer keeping {" ^ String.concat ", " types ^ "}"
  | Summarizer (Edge_removal types) ->
    "edge-removal summarizer dropping {" ^ String.concat ", " types ^ "}"
  | Summarizer (Vertex_aggregator { vtype; group_prop; agg_prop; agg }) ->
    Printf.sprintf "vertex aggregator: group %s by %s, %s(%s)" vtype group_prop (agg_name agg) agg_prop
  | Summarizer (Subgraph_aggregator { agg_prop; agg }) ->
    Printf.sprintf "subgraph aggregator: contract components, %s(%s)" (agg_name agg) agg_prop
  | Summarizer (Ego_aggregator { k; agg_prop; agg }) ->
    Printf.sprintf "ego aggregator: %s(%s) over %d-hop neighbourhoods" (agg_name agg) agg_prop k

let equal a b = name a = name b
let compare a b = String.compare (name a) (name b)
