(** View-size estimation (paper §V-A). The size of a view is its edge
    count when materialized; for a k-hop connector that is the number
    of k-length paths, estimated from vertex cardinalities and
    out-degree percentiles:

    - Eq. 1 (Erdos-Renyi): [C(n, k+1) * (m / C(n, 2))^k] — kept as the
      baseline the paper shows underestimates real graphs by orders of
      magnitude.
    - Eq. 2 (homogeneous): [n * deg_alpha^k].
    - Eq. 3 (heterogeneous): [sum over source types t of
      n_t * deg_alpha(t)^k].

    [typed_chain] refines Eq. 3 for a *typed* connector by walking the
    schema's k-step type paths from the source type and multiplying
    the per-type percentile degrees along each path. *)

val erdos_renyi : n:int -> m:int -> k:int -> float
(** Eq. 1. Computed in log space; 0 when [n < k+1] or [m = 0]. *)

val homogeneous : Kaskade_graph.Gstats.t -> k:int -> alpha:float -> float
(** Eq. 2 over the global out-degree distribution. *)

val heterogeneous : Kaskade_graph.Gstats.t -> k:int -> alpha:float -> float
(** Eq. 3 over per-type distributions (source types only). *)

val estimate_paths : Kaskade_graph.Gstats.t -> k:int -> alpha:float -> float
(** Dispatch: Eq. 2 when the graph is homogeneous, Eq. 3 otherwise. *)

val typed_chain :
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  src_type:string ->
  dst_type:string ->
  k:int ->
  alpha:float ->
  float
(** [n_src * sum over schema k-paths src~>dst of (product of
    deg_alpha(intermediate types))]. 0 when no schema path exists. *)

val connector_size :
  Kaskade_graph.Gstats.t -> Kaskade_graph.Schema.t -> alpha:float -> Kaskade_views.View.connector -> float
(** Estimated edge count of a connector view ({!typed_chain} for
    k-hop; conservative closures for the path-based connectors). *)

val creation_cost :
  Kaskade_graph.Gstats.t -> Kaskade_graph.Schema.t -> alpha:float -> Kaskade_views.View.t -> float
(** I/O-proportional view creation cost (§V-A): proportional to the
    estimated view size for connectors; one scan of the graph for
    summarizers. *)

val view_size :
  Kaskade_graph.Gstats.t -> Kaskade_graph.Schema.t -> alpha:float -> Kaskade_views.View.t -> float
(** Estimated materialized edge count for any view (summarizers use
    type cardinalities). *)
