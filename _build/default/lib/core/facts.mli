(** Explicit-constraint extraction (paper §IV-A1): transform the query
    and the graph schema into Prolog facts. For the running example
    (Listing 1) this produces exactly the facts the paper shows —
    [queryVertex/1], [queryVertexType/2], [queryEdge/2],
    [queryEdgeType/3], [queryVariableLengthPath/4], plus
    [queryReturned/1] marking projected vertices (the paper's §IV-B
    restricts connector endpoints to "the only vertices projected out
    of the MATCH clause"), and [schemaVertex/1] / [schemaEdge/3] from
    the schema. *)

val query_facts :
  Kaskade_graph.Schema.t -> Kaskade_query.Ast.t -> Kaskade_prolog.Term.t list
(** Facts for one query. Untyped pattern variables receive the
    schema's vertex type when it is unique (homogeneous graphs). *)

val schema_facts : Kaskade_graph.Schema.t -> Kaskade_prolog.Term.t list

val assert_all : Kaskade_prolog.Db.t -> Kaskade_prolog.Term.t list -> unit

val facts_to_string : Kaskade_prolog.Term.t list -> string
(** Dot-terminated listing (debugging, DESIGN docs, tests). *)
