(** View-based query rewriting (paper §V-C). Given a query and a view,
    produce the equivalent query over the view:

    - k-hop connector: contract a uniformly-directed pattern segment
      between two endpoint-typed vertices into a single connector edge
      whose hop bounds are divided by k (Listing 1 -> Listing 4:
      [-\[r*0..8\]->] between two WRITES_TO/IS_READ_BY hops becomes
      [-\[:JOB_TO_JOB_2HOP*1..5\]->]). Interior vertices must not be
      referenced outside the segment. A total hop range [\[L, H\]]
      maps to [\[max 1 (ceil L/k), floor H/k\]]; the rewrite is
      refused when that range is empty.
    - summarizers: the query text is unchanged; rewriting checks the
      query only touches surviving vertex/edge types, and execution
      targets the summarized graph.

    Rewrites are single-view, as in the paper ("combining multiple
    views in a single rewriting is left as future work"). *)

type rewriting = {
  original : Kaskade_query.Ast.t;
  rewritten : Kaskade_query.Ast.t;  (** Equal to [original] for summarizers. *)
  view : Kaskade_views.View.t;
}

val rewrite :
  Kaskade_graph.Schema.t -> Kaskade_query.Ast.t -> Kaskade_views.View.t -> rewriting option
(** [None] when the view cannot answer the query. *)

val merge_chains : Kaskade_query.Ast.pattern list -> Kaskade_query.Ast.pattern list
(** Normalize a pattern list by concatenating patterns that chain on a
    shared endpoint variable (exposed for tests). *)

val traversal_types :
  Kaskade_graph.Schema.t -> Kaskade_query.Ast.t -> string list option
(** Every vertex type the query's patterns can touch — the types its
    variables carry plus every intermediate type on a schema walk
    realizing a variable-length segment. This is the minimal sound
    keep-set for a vertex-inclusion summarizer: keeping only the
    *mentioned* types would sever the very paths a [*lo..hi] edge
    must traverse. [None] when an endpoint type of a variable-length
    segment cannot be determined. *)
