open Kaskade_query
open Kaskade_views

type rewriting = { original : Ast.t; rewritten : Ast.t; view : View.t }

(* ------------------------------------------------------------------ *)
(* Chain normalization                                                 *)

let last_node (p : Ast.pattern) =
  match List.rev p.p_steps with [] -> p.p_start | (_, n) :: _ -> n

let concat_patterns (a : Ast.pattern) (b : Ast.pattern) =
  (* a's last node = b's first node; keep a's copy, merging labels. *)
  let a_last = last_node a in
  let joined =
    {
      Ast.n_var = a_last.n_var;
      n_label = (match a_last.n_label with Some _ as l -> l | None -> b.p_start.n_label);
    }
  in
  let a_steps =
    match List.rev a.p_steps with
    | [] -> []
    | (e, _) :: rest -> List.rev ((e, joined) :: rest)
  in
  if a_steps = [] then { Ast.p_start = joined; p_steps = b.p_steps }
  else { a with p_steps = a_steps @ b.p_steps }

let merge_chains patterns =
  let rec fixpoint ps =
    let rec try_merge acc = function
      | [] -> None
      | p :: rest -> begin
        let lv = (last_node p).Ast.n_var in
        match
          List.find_opt
            (fun (q : Ast.pattern) -> q != p && lv <> None && q.p_start.n_var = lv)
            (acc @ rest)
        with
        | Some q ->
          let merged = concat_patterns p q in
          let remaining = List.filter (fun r -> r != p && r != q) (acc @ (p :: rest)) in
          Some (merged :: remaining)
        | None -> try_merge (acc @ [ p ]) rest
      end
    in
    match try_merge [] ps with Some ps' -> fixpoint ps' | None -> ps
  in
  fixpoint patterns

(* ------------------------------------------------------------------ *)
(* Variable usage                                                      *)

let rec expr_vars acc = function
  | Ast.Var v -> v :: acc
  | Ast.Prop (v, _) -> v :: acc
  | Ast.Lit _ | Ast.Count_star -> acc
  | Ast.Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ast.Unop (_, e) -> expr_vars acc e
  | Ast.Agg (_, e) -> expr_vars acc e

let pattern_vars (p : Ast.pattern) =
  let acc = ref [] in
  (match p.p_start.n_var with Some v -> acc := v :: !acc | None -> ());
  List.iter
    (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
      (match e.e_var with Some v -> acc := v :: !acc | None -> ());
      match n.n_var with Some v -> acc := v :: !acc | None -> ())
    p.p_steps;
  !acc

(* Variables referenced by the match block outside a given chain. *)
let external_uses (mb : Ast.match_block) chain =
  let acc = ref [] in
  List.iter (fun (it : Ast.select_item) -> acc := expr_vars !acc it.item_expr) mb.returns;
  (match mb.m_where with Some e -> acc := expr_vars !acc e | None -> ());
  List.iter (fun p -> if p != chain then acc := pattern_vars p @ !acc) mb.patterns;
  List.sort_uniq compare !acc

(* ------------------------------------------------------------------ *)
(* Connector contraction                                               *)

type seg_edge = { ep : Ast.edge_pat; lo : int; hi : int }

(* Hop counts f in [1, max_hops] for which the schema admits an
   f-length directed type path src ~> dst. DP over type reachability:
   O(max_hops * |schema edges|). *)
let schema_feasible_hops schema ~src_type ~dst_type ~max_hops =
  let open Kaskade_graph in
  match (Schema.vertex_type_id schema src_type, Schema.vertex_type_id schema dst_type) with
  | exception Not_found -> []
  | src_ty, dst_ty ->
    let n = Schema.n_vertex_types schema in
    let cur = Array.make n false in
    cur.(src_ty) <- true;
    let feasible = ref [] in
    let cur = ref cur in
    for f = 1 to max_hops do
      let next = Array.make n false in
      Array.iteri
        (fun ty reachable ->
          if reachable then
            List.iter (fun et -> next.(Schema.edge_dst schema et) <- true)
              (Schema.edge_types_from schema ty))
        !cur;
      if next.(dst_ty) then feasible := f :: !feasible;
      cur := next
    done;
    List.rev !feasible

let edge_hops (e : Ast.edge_pat) =
  match e.e_len with Ast.Single -> (1, 1) | Ast.Var_length (lo, hi) -> (lo, hi)

(* A chain as arrays of nodes and edges. *)
let explode (p : Ast.pattern) =
  let nodes = Array.of_list (p.p_start :: List.map snd p.p_steps) in
  let edges =
    Array.of_list
      (List.map
         (fun ((e : Ast.edge_pat), _) ->
           let lo, hi = edge_hops e in
           { ep = e; lo; hi })
         p.p_steps)
  in
  (nodes, edges)

let implode nodes edges =
  match Array.to_list nodes with
  | [] -> invalid_arg "Rewrite.implode: empty chain"
  | start :: rest ->
    { Ast.p_start = start; p_steps = List.map2 (fun e n -> (e.ep, n)) (Array.to_list edges) rest }

let node_type schema summary (n : Ast.node_pat) =
  match n.Ast.n_label with
  | Some l -> Some l
  | None -> begin
    match n.Ast.n_var with
    | Some v -> Analyze.infer_vertex_type summary v
    | None -> begin
      (* Homogeneous schemas type everything. *)
      match Kaskade_graph.Schema.vertex_types schema with [ t ] -> Some t | _ -> None
    end
  end

let contract_chain schema summary mb (chain : Ast.pattern) ~src_type ~dst_type ~k ~edge_name =
  let nodes, edges = explode chain in
  let n_edges = Array.length edges in
  if n_edges = 0 then None
  else begin
    let used_outside = external_uses mb chain in
    let interior_free i j =
      let ok = ref true in
      for x = i + 1 to j - 1 do
        (match nodes.(x).Ast.n_var with
        | Some v -> if List.mem v used_outside then ok := false
        | None -> ());
        ()
      done;
      (* Edge variables inside the segment must also be unreferenced
         (their binding disappears with the contraction). *)
      for x = i to j - 1 do
        match edges.(x).ep.Ast.e_var with
        | Some v -> if List.mem v used_outside then ok := false
        | None -> ()
      done;
      !ok
    in
    let direction_of i j =
      let dirs = Array.init (j - i) (fun x -> edges.(i + x).ep.Ast.e_dir) in
      if Array.for_all (fun d -> d = Ast.Fwd) dirs then Some Ast.Fwd
      else if Array.for_all (fun d -> d = Ast.Bwd) dirs then Some Ast.Bwd
      else None
    in
    let type_ok i j dir =
      let a = node_type schema summary nodes.(i) and b = node_type schema summary nodes.(j) in
      match dir with
      | Ast.Fwd -> a = Some src_type && b = Some dst_type
      | Ast.Bwd -> a = Some dst_type && b = Some src_type
    in
    let hop_range i j =
      let lo = ref 0 and hi = ref 0 in
      for x = i to j - 1 do
        lo := !lo + edges.(x).lo;
        hi := !hi + edges.(x).hi
      done;
      (!lo, !hi)
    in
    (* Prefer the longest contractible segment. Soundness requires the
       connector to cover *every* hop count the original segment can
       realize: each schema-feasible hop count f in [lo, hi] must be a
       multiple of k (hop counts that the schema rules out match
       nothing, so they need no cover; connector hops whose k*h is
       schema-infeasible likewise match nothing and are harmless). *)
    let best = ref None in
    for i = 0 to n_edges do
      for j = n_edges downto i + 1 do
        if !best = None then begin
          match direction_of i j with
          | Some dir when type_ok i j dir && interior_free i j -> begin
            let lo, hi = hop_range i j in
            (* Unbounded segments are transitive-closure territory
               (Same_vertex_type connectors), not k-hop contraction. *)
            if hi > 64 then ()
            else
            let feasible =
              List.filter
                (fun f -> f >= lo && f <= hi)
                (schema_feasible_hops schema ~src_type ~dst_type ~max_hops:hi)
            in
            if feasible <> [] && List.for_all (fun f -> f mod k = 0) feasible then begin
              let hops = List.map (fun f -> f / k) feasible in
              let lo' = List.fold_left Stdlib.min max_int hops in
              let hi' = List.fold_left Stdlib.max 0 hops in
              best := Some (i, j, dir, lo', hi')
            end
          end
          | _ -> ()
        end
      done
    done;
    match !best with
    | None -> None
    | Some (i, j, dir, lo', hi') ->
      let conn_edge =
        {
          Ast.e_var = None;
          e_label = Some edge_name;
          e_len = (if lo' = 1 && hi' = 1 then Ast.Single else Ast.Var_length (lo', hi'));
          e_dir = dir;
        }
      in
      let new_nodes = Array.concat [ Array.sub nodes 0 (i + 1); Array.sub nodes j (Array.length nodes - j) ] in
      let new_edges =
        Array.concat
          [ Array.sub edges 0 i;
            [| { ep = conn_edge; lo = lo'; hi = hi' } |];
            Array.sub edges j (n_edges - j) ]
      in
      Some (implode new_nodes new_edges)
  end

let rewrite_connector schema query ~src_type ~dst_type ~k ~edge_name =
  let summary = Analyze.check schema query in
  let changed = ref false in
  let rewrite_block (mb : Ast.match_block) =
    let merged = merge_chains mb.patterns in
    let mb = { mb with Ast.patterns = merged } in
    let patterns' =
      List.map
        (fun chain ->
          if !changed then chain
          else begin
            match contract_chain schema summary mb chain ~src_type ~dst_type ~k ~edge_name with
            | Some chain' ->
              changed := true;
              chain'
            | None -> chain
          end)
        mb.patterns
    in
    { mb with Ast.patterns = patterns' }
  in
  let rec map_source = function
    | Ast.From_match mb -> Ast.From_match (rewrite_block mb)
    | Ast.From_select sb -> Ast.From_select { sb with Ast.from = map_source sb.Ast.from }
  in
  let rewritten =
    match query with
    | Ast.Select sb -> Ast.Select { sb with Ast.from = map_source sb.Ast.from }
    | Ast.Match_only mb -> Ast.Match_only (rewrite_block mb)
    | Ast.Call _ -> query
  in
  if !changed then Some rewritten else None

(* ------------------------------------------------------------------ *)
(* Traversal-type analysis                                             *)

(* Vertex types appearing on some directed schema walk src ~> dst of
   length <= max_hops (endpoints included). Conservative: for very
   large bounds, falls back to plain reachability (a superset, which
   is safe for computing keep-sets). *)
let types_on_walks schema ~src_type ~dst_type ~max_hops =
  let open Kaskade_graph in
  let n = Schema.n_vertex_types schema in
  let src = Schema.vertex_type_id schema src_type and dst = Schema.vertex_type_id schema dst_type in
  if max_hops > 64 then begin
    (* Length-insensitive closure: T with src ~>* T and T ~>* dst. *)
    let reach from =
      let seen = Array.make n false in
      seen.(from) <- true;
      let rec go frontier =
        match frontier with
        | [] -> ()
        | ty :: rest ->
          let next =
            List.filter_map
              (fun et ->
                let d = Schema.edge_dst schema et in
                if seen.(d) then None
                else begin
                  seen.(d) <- true;
                  Some d
                end)
              (Schema.edge_types_from schema ty)
          in
          go (next @ rest)
      in
      go [ from ];
      seen
    in
    let fwd = reach src in
    let out = ref [] in
    for ty = n - 1 downto 0 do
      if fwd.(ty) && (reach ty).(dst) then out := Schema.vertex_type_name schema ty :: !out
    done;
    !out
  end
  else begin
    (* fwd.(i).(t): t reachable from src in exactly i steps. *)
    let fwd = Array.make_matrix (max_hops + 1) n false in
    fwd.(0).(src) <- true;
    for i = 1 to max_hops do
      for ty = 0 to n - 1 do
        if fwd.(i - 1).(ty) then
          List.iter (fun et -> fwd.(i).(Schema.edge_dst schema et) <- true)
            (Schema.edge_types_from schema ty)
      done
    done;
    (* bwd.(j).(t): dst reachable from t in exactly j steps. *)
    let bwd = Array.make_matrix (max_hops + 1) n false in
    bwd.(0).(dst) <- true;
    for j = 1 to max_hops do
      for ty = 0 to n - 1 do
        List.iter
          (fun et -> if bwd.(j - 1).(Schema.edge_dst schema et) then bwd.(j).(ty) <- true)
          (Schema.edge_types_from schema ty)
      done
    done;
    let on_walk = Array.make n false in
    for i = 0 to max_hops do
      for j = 0 to max_hops - i do
        for ty = 0 to n - 1 do
          if fwd.(i).(ty) && bwd.(j).(ty) then on_walk.(ty) <- true
        done
      done
    done;
    let out = ref [] in
    for ty = n - 1 downto 0 do
      if on_walk.(ty) then out := Schema.vertex_type_name schema ty :: !out
    done;
    !out
  end

let traversal_types schema query =
  match Analyze.check schema query with
  | exception Analyze.Semantic_error _ -> None
  | summary ->
    let base = List.map snd summary.Analyze.vertex_types in
    let rec add_paths acc = function
      | [] -> Some acc
      | (x, y, _lo, hi) :: rest -> begin
        match (Analyze.infer_vertex_type summary x, Analyze.infer_vertex_type summary y) with
        | Some tx, Some ty ->
          add_paths (types_on_walks schema ~src_type:tx ~dst_type:ty ~max_hops:hi @ acc) rest
        | _ -> None
      end
    in
    Option.map (List.sort_uniq compare) (add_paths base summary.Analyze.var_length_paths)

(* ------------------------------------------------------------------ *)
(* Summarizer applicability                                            *)

let summarizer_applicable schema query ~keep_vertices ~kept_edges =
  match Analyze.check schema query with
  | exception Analyze.Semantic_error _ -> false
  | summary -> begin
    match traversal_types schema query with
    | None -> false
    | Some needed ->
      List.for_all (fun ty -> List.mem ty keep_vertices) needed
      && List.for_all
           (fun (_, _, et) -> match et with None -> true | Some e -> List.mem e kept_edges)
           summary.Analyze.edges
  end

let kept_after_restrict schema keep_vertices =
  let restricted = Kaskade_graph.Schema.restrict schema ~keep_vertices in
  ( Kaskade_graph.Schema.vertex_types restricted,
    List.map (fun (d : Kaskade_graph.Schema.edge_def) -> d.name) (Kaskade_graph.Schema.edge_defs restricted) )

let rewrite schema query (view : View.t) =
  match view with
  | View.Connector (View.K_hop { src_type; dst_type; k }) ->
    let edge_name = View.connector_edge_type (View.K_hop { src_type; dst_type; k }) in
    Option.map
      (fun rewritten -> { original = query; rewritten; view })
      (rewrite_connector schema query ~src_type ~dst_type ~k ~edge_name)
  | View.Summarizer (View.Vertex_inclusion keep) ->
    let keep_vertices, kept_edges = kept_after_restrict schema keep in
    if summarizer_applicable schema query ~keep_vertices ~kept_edges then
      Some { original = query; rewritten = query; view }
    else None
  | View.Summarizer (View.Vertex_removal drop) ->
    let keep =
      List.filter (fun t -> not (List.mem t drop)) (Kaskade_graph.Schema.vertex_types schema)
    in
    let keep_vertices, kept_edges = kept_after_restrict schema keep in
    if summarizer_applicable schema query ~keep_vertices ~kept_edges then
      Some { original = query; rewritten = query; view }
    else None
  | View.Summarizer (View.Edge_inclusion keep_edges) ->
    if
      summarizer_applicable schema query
        ~keep_vertices:(Kaskade_graph.Schema.vertex_types schema)
        ~kept_edges:keep_edges
    then Some { original = query; rewritten = query; view }
    else None
  | View.Summarizer (View.Edge_removal dropped) ->
    let kept_edges =
      List.filter_map
        (fun (d : Kaskade_graph.Schema.edge_def) ->
          if List.mem d.name dropped then None else Some d.name)
        (Kaskade_graph.Schema.edge_defs schema)
    in
    if
      summarizer_applicable schema query
        ~keep_vertices:(Kaskade_graph.Schema.vertex_types schema)
        ~kept_edges
    then Some { original = query; rewritten = query; view }
    else None
  | View.Connector (View.Same_vertex_type _ | View.Same_edge_type _ | View.Source_to_sink)
  | View.Summarizer (View.Vertex_aggregator _ | View.Subgraph_aggregator _ | View.Ego_aggregator _) ->
    (* Rewritings over these views are not mechanized (the paper's
       experiments only rewrite over k-hop connectors and filters). *)
    None
