open Kaskade_graph
open Kaskade_views

(* ln C(n, r) for modest r. *)
let log_binomial n r =
  if r < 0 || r > n then neg_infinity
  else begin
    let acc = ref 0.0 in
    for i = 0 to r - 1 do
      acc := !acc +. log (float_of_int (n - i)) -. log (float_of_int (i + 1))
    done;
    !acc
  end

let erdos_renyi ~n ~m ~k =
  if n < k + 1 || m <= 0 || n < 2 then 0.0
  else begin
    let log_pairs = log_binomial n 2 in
    let log_p = log (float_of_int m) -. log_pairs in
    exp (log_binomial n (k + 1) +. (float_of_int k *. log_p))
  end

let homogeneous stats ~k ~alpha =
  let n = float_of_int (Gstats.total_vertices stats) in
  let deg = float_of_int (Gstats.global_out_degree_percentile stats ~alpha) in
  n *. (deg ** float_of_int k)

let heterogeneous stats ~k ~alpha =
  List.fold_left
    (fun acc ty ->
      let s = Gstats.summary_of_type stats ty in
      let deg = float_of_int (Gstats.out_degree_percentile stats ~vtype:ty ~alpha) in
      acc +. (float_of_int s.count *. (deg ** float_of_int k)))
    0.0
    (Gstats.source_types stats)

let estimate_paths stats ~k ~alpha =
  match Gstats.source_types stats with
  | [ _ ] when List.length (Gstats.summaries stats) = 1 -> homogeneous stats ~k ~alpha
  | _ -> heterogeneous stats ~k ~alpha

let typed_chain stats schema ~src_type ~dst_type ~k ~alpha =
  match (Schema.vertex_type_id schema src_type, Schema.vertex_type_id schema dst_type) with
  | exception Not_found -> 0.0
  | src_ty, dst_ty ->
    let n_src = float_of_int (Gstats.summary_of_type stats src_ty).count in
    let deg ty = float_of_int (Gstats.out_degree_percentile stats ~vtype:ty ~alpha) in
    (* Sum of per-path degree products over all k-step type paths. *)
    let rec walk ty remaining =
      if remaining = 0 then if ty = dst_ty then 1.0 else 0.0
      else
        List.fold_left
          (fun acc et -> acc +. (deg ty *. walk (Schema.edge_dst schema et) (remaining - 1)))
          0.0
          (Schema.edge_types_from schema ty)
    in
    n_src *. walk src_ty k

let connector_size stats schema ~alpha = function
  | View.K_hop { src_type; dst_type; k } -> typed_chain stats schema ~src_type ~dst_type ~k ~alpha
  | View.Same_vertex_type { vtype } -> begin
    (* Transitive closure upper bound: n_t^2 pairs. *)
    match Schema.vertex_type_id schema vtype with
    | ty ->
      let n = float_of_int (Gstats.summary_of_type stats ty).count in
      n *. n
    | exception Not_found -> 0.0
  end
  | View.Same_edge_type { etype } -> begin
    match Schema.edge_type_id schema etype with
    | etid ->
      let src = Schema.edge_src schema etid in
      let n = float_of_int (Gstats.summary_of_type stats src).count in
      let deg = float_of_int (Gstats.out_degree_percentile stats ~vtype:src ~alpha) in
      if Schema.edge_src schema etid = Schema.edge_dst schema etid then n *. n else n *. deg
    | exception Not_found -> 0.0
  end
  | View.Source_to_sink ->
    (* Sources times sinks upper bound is wildly loose; approximate by
       total vertices times the alpha-percentile degree. *)
    float_of_int (Gstats.total_vertices stats)
    *. float_of_int (Gstats.global_out_degree_percentile stats ~alpha)

let rec summarizer_size stats schema = function
  | View.Vertex_inclusion keep ->
    (* Edges survive when both endpoint types are kept: approximate by
       the sum of out-edges of kept source types whose targets are all
       kept (schema-level check). *)
    let kept ty_name = List.mem ty_name keep in
    List.fold_left
      (fun acc (d : Schema.edge_def) ->
        if kept d.src && kept d.dst then begin
          let ty = Schema.vertex_type_id schema d.src in
          let s = Gstats.summary_of_type stats ty in
          acc +. (float_of_int s.count *. Gstats.out_degree_mean stats ~vtype:ty)
        end
        else acc)
      0.0 (Schema.edge_defs schema)
  | View.Vertex_removal drop ->
    let keep = List.filter (fun t -> not (List.mem t drop)) (Schema.vertex_types schema) in
    summarizer_size_aux stats schema keep
  | View.Edge_inclusion _ | View.Edge_removal _ ->
    (* Bounded by the graph's edge count. *)
    float_of_int (Gstats.total_edges stats)
  | View.Vertex_aggregator _ | View.Subgraph_aggregator _ | View.Ego_aggregator _ ->
    float_of_int (Gstats.total_edges stats)

and summarizer_size_aux stats schema keep =
  summarizer_size stats schema (View.Vertex_inclusion keep)

let view_size stats schema ~alpha = function
  | View.Connector c -> connector_size stats schema ~alpha c
  | View.Summarizer s -> summarizer_size stats schema s

let creation_cost stats schema ~alpha = function
  | View.Connector c -> connector_size stats schema ~alpha c
  | View.Summarizer _ ->
    (* One scan of the raw graph. *)
    float_of_int (Gstats.total_vertices stats + Gstats.total_edges stats)
