(** Kaskade's rule library (paper §IV): constraint mining rules
    (implicit-constraint derivation, Listings 2 and 6) and view
    templates (Listings 3 and 5), written in Prolog and evaluated by
    [Kaskade_prolog.Engine]. The library is extensible exactly as the
    paper describes — additional rules are ordinary Prolog text.

    Deviations from the paper's listings, documented here and in
    DESIGN.md:
    - [schemaKHopPath/3] uses a bounded, cycle-permitting recursion
      (K must be bound). The paper's Listing 2 tracks a type trail and
      therefore forbids revisiting a vertex *type*, which would reject
      the very K in {4, 6, 8, 10} job-to-job connectors its own §IV-B
      example enumerates; the trail-guarded version is still provided
      as [schemaKHopPathAcyclic/3] and exercised by the enumeration
      ablation.
    - [queryKHopPath/3] carries a visited-trail so cyclic MATCH
      patterns terminate. On the paper's (acyclic) patterns it derives
      the same facts as Listing 6.
    - Templates additionally check [queryReturned/1] on connector
      endpoints, matching the §IV-B example ("the only vertices
      projected out of the MATCH clause"). *)

val mining_rules : string
(** Schema + query constraint mining rules. *)

val view_templates : string
(** Connector and summarizer view templates. *)

val all : string
(** [mining_rules ^ view_templates]. *)

val unconstrained_templates : string
(** Ablation variant: the same view templates with the query
    constraints removed — enumeration driven by the schema alone
    (bounded by [maxK]); mirrors the paper's discussion of the
    [M^k] search space without constraint injection. *)
