lib/core/rewrite.mli: Kaskade_graph Kaskade_query Kaskade_views
