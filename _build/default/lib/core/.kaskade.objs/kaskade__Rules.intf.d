lib/core/rules.mli:
