lib/core/estimator.ml: Gstats Kaskade_graph Kaskade_views List Schema View
