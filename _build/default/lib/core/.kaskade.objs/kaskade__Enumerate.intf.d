lib/core/enumerate.mli: Kaskade_graph Kaskade_prolog Kaskade_query Kaskade_views
