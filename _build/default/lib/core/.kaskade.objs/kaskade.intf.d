lib/core/kaskade.mli: Enumerate Estimator Facts Kaskade_exec Kaskade_graph Kaskade_query Kaskade_views Rewrite Rules Selection
