lib/core/selection.ml: Cost Enumerate Estimator Gstats Hashtbl Kaskade_exec Kaskade_graph Kaskade_knapsack Kaskade_views List Rewrite Schema Stdlib String View
