lib/core/facts.ml: Analyze Db Hashtbl Kaskade_graph Kaskade_prolog Kaskade_query List Schema String Term
