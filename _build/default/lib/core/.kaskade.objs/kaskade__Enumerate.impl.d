lib/core/enumerate.ml: Db Engine Facts Hashtbl Kaskade_graph Kaskade_prolog Kaskade_query Kaskade_views List Prelude Printf Rewrite Rules Term View
