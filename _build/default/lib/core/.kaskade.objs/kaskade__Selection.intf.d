lib/core/selection.mli: Kaskade_graph Kaskade_query Kaskade_views
