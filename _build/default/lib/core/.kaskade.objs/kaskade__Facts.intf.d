lib/core/facts.mli: Kaskade_graph Kaskade_prolog Kaskade_query
