lib/core/estimator.mli: Kaskade_graph Kaskade_views
