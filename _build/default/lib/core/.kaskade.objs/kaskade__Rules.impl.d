lib/core/rules.ml:
