lib/core/rewrite.ml: Analyze Array Ast Kaskade_graph Kaskade_query Kaskade_views List Option Schema Stdlib View
