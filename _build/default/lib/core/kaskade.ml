module Facts = Facts
module Rules = Rules
module Enumerate = Enumerate
module Estimator = Estimator
module Selection = Selection
module Rewrite = Rewrite

open Kaskade_graph
open Kaskade_views
open Kaskade_exec

let log_src = Logs.Src.create "kaskade" ~doc:"Kaskade view selection and rewriting"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  graph : Graph.t;
  schema : Schema.t;
  stats : Gstats.t;
  catalog : Catalog.t;
  alpha : float;
  mode : Executor.mode;
  ctxs : (string, Executor.ctx) Hashtbl.t;  (* "" = base graph *)
  view_stats : (string, Gstats.t) Hashtbl.t;
}

type run_target = Raw | Via_view of string

let create ?(alpha = 95.0) ?(mode = Executor.Distinct_endpoints) graph =
  {
    graph;
    schema = Graph.schema graph;
    stats = Gstats.compute graph;
    catalog = Catalog.create graph;
    alpha;
    mode;
    ctxs = Hashtbl.create 8;
    view_stats = Hashtbl.create 8;
  }

let graph t = t.graph
let schema t = t.schema
let stats t = t.stats
let catalog t = t.catalog

let parse = Kaskade_query.Qparser.parse

let ctx_for t name g =
  match Hashtbl.find_opt t.ctxs name with
  | Some ctx -> ctx
  | None ->
    let ctx = Executor.create ~mode:t.mode ~planner:true g in
    Hashtbl.add t.ctxs name ctx;
    ctx

let base_ctx t = ctx_for t "" t.graph

let view_ctx t name =
  match Catalog.find_by_name t.catalog name with
  | Some entry -> ctx_for t name entry.Catalog.materialized.Materialize.graph
  | None -> raise Not_found

let stats_for_view t name g =
  match Hashtbl.find_opt t.view_stats name with
  | Some s -> s
  | None ->
    let s = Gstats.compute g in
    Hashtbl.add t.view_stats name s;
    s

let enumerate_views t q = Enumerate.enumerate t.schema q

let select_views ?solver ?query_weights t ~queries ~budget_edges =
  let sel =
    Selection.select ~alpha:t.alpha ?solver ?query_weights t.stats t.schema ~queries ~budget_edges
  in
  Log.info (fun k ->
      k "selection over %d queries (budget %d edges): chose [%s], weight %d"
        (List.length queries) budget_edges
        (String.concat "; " (List.map View.name sel.Selection.chosen))
        sel.Selection.total_weight);
  sel

let materialize t view =
  match Catalog.find t.catalog view with
  | Some entry -> entry
  | None ->
    let m = Materialize.materialize t.graph view in
    Log.info (fun k ->
        k "materialized %s: %d vertices, %d edges (cost %.0f)" (View.name view)
          (Graph.n_vertices m.Materialize.graph)
          (Graph.n_edges m.Materialize.graph)
          m.Materialize.build_cost);
    Catalog.add t.catalog m;
    (* Invalidate any stale per-view state. *)
    Hashtbl.remove t.ctxs (View.name view);
    Hashtbl.remove t.view_stats (View.name view);
    Option.get (Catalog.find t.catalog view)

let materialize_selected t (sel : Selection.t) = List.map (materialize t) sel.Selection.chosen

let best_rewriting t q =
  let raw_cost = Cost.eval_cost t.stats t.schema q in
  let best = ref None in
  List.iter
    (fun (entry : Catalog.entry) ->
      let view = entry.materialized.Materialize.view in
      match Rewrite.rewrite t.schema q view with
      | Some rw ->
        let vg = entry.materialized.Materialize.graph in
        let vstats = stats_for_view t (View.name view) vg in
        let cost = Cost.eval_cost vstats (Graph.schema vg) rw.Rewrite.rewritten in
        if cost < raw_cost then begin
          match !best with
          | Some (_, _, best_cost) when best_cost <= cost -> ()
          | _ -> best := Some (rw, entry, cost)
        end
      | None -> ())
    (Catalog.entries t.catalog);
  Option.map (fun (rw, entry, _) -> (rw, entry)) !best

let run_raw t q = Executor.run (base_ctx t) q

let run_on_view t name q =
  match Catalog.find_by_name t.catalog name with
  | Some _ -> Executor.run (view_ctx t name) q
  | None -> raise Not_found

let run t q =
  match best_rewriting t q with
  | Some (rw, entry) ->
    let name = View.name entry.materialized.Materialize.view in
    Log.debug (fun k ->
        k "answering via %s: %s" name (Kaskade_query.Pretty.to_string rw.Rewrite.rewritten));
    (Executor.run (view_ctx t name) rw.Rewrite.rewritten, Via_view name)
  | None ->
    Log.debug (fun k -> k "no materialized view helps; answering on the base graph");
    (run_raw t q, Raw)
