open Kaskade_prolog
open Kaskade_query

let atom = Term.atom
let f name args = Term.compound name args

let query_facts schema q =
  let summary = Analyze.check schema q in
  let facts = ref [] in
  let emit t = facts := t :: !facts in
  let vars = Hashtbl.create 16 in
  let vertex v = if not (Hashtbl.mem vars v) then begin
      Hashtbl.add vars v ();
      emit (f "queryVertex" [ atom v ])
    end
  in
  (* Vertices and their types. *)
  List.iter
    (fun (v, ty) ->
      vertex v;
      emit (f "queryVertexType" [ atom v; atom ty ]))
    summary.Analyze.vertex_types;
  (* Untyped variables on homogeneous schemas get the unique type. *)
  let unique_type =
    match Kaskade_graph.Schema.vertex_types schema with [ t ] -> Some t | _ -> None
  in
  let ensure_typed v =
    vertex v;
    match (List.assoc_opt v summary.Analyze.vertex_types, unique_type) with
    | None, Some t -> emit (f "queryVertexType" [ atom v; atom t ])
    | _ -> ()
  in
  List.iter
    (fun (src, dst, etype) ->
      ensure_typed src;
      ensure_typed dst;
      emit (f "queryEdge" [ atom src; atom dst ]);
      match etype with
      | Some e -> emit (f "queryEdgeType" [ atom src; atom dst; atom e ])
      | None -> ())
    summary.Analyze.edges;
  List.iter
    (fun (src, dst, lo, hi) ->
      ensure_typed src;
      ensure_typed dst;
      emit (f "queryVariableLengthPath" [ atom src; atom dst; Term.int lo; Term.int hi ]))
    summary.Analyze.var_length_paths;
  List.iter (fun v -> emit (f "queryReturned" [ atom v ])) summary.Analyze.returned_vars;
  List.rev !facts

let schema_facts schema =
  let open Kaskade_graph in
  let vfacts = List.map (fun t -> f "schemaVertex" [ atom t ]) (Schema.vertex_types schema) in
  let efacts =
    List.map
      (fun (d : Schema.edge_def) -> f "schemaEdge" [ atom d.src; atom d.dst; atom d.name ])
      (Schema.edge_defs schema)
  in
  vfacts @ efacts

let assert_all db facts = List.iter (Db.add_fact db) facts

let facts_to_string facts =
  String.concat "\n" (List.map (fun t -> Term.to_string t ^ ".") facts)
