let mining_rules =
  {|
% =====================================================================
% Schema constraint mining rules (paper Listing 2).
% =====================================================================

% Paper-verbatim acyclic variant: K-length directed paths over the
% schema graph that never revisit a vertex type.
schemaKHopPathAcyclic(X, Y, K) :-
  schemaKHopPathAcyclic(X, Y, K, []).
schemaKHopPathAcyclic(X, Y, 1, _) :-
  schemaEdge(X, Y, _).
schemaKHopPathAcyclic(X, Y, K, Trail) :-
  schemaEdge(X, Z, _), not(member(Z, Trail)),
  schemaKHopPathAcyclic(Z, Y, K1, [X|Trail]), K is K1 + 1.

% Bounded cycle-permitting variant used by the view templates: are
% K-length paths between types X and Y feasible over the schema?
% K must be bound (the query constraints bind it).
schemaKHopPath(X, Y, K) :-
  integer(K), K >= 1, schemaKHopPathStep(X, Y, K).
schemaKHopPathStep(X, Y, 1) :-
  schemaEdge(X, Y, _).
schemaKHopPathStep(X, Y, K) :-
  K > 1, schemaEdge(X, Z, _), K1 is K - 1,
  schemaKHopPathStep(Z, Y, K1).

% Generator variant for unconstrained enumeration (ablation): all
% schema K-hop paths with K up to MaxK.
schemaKHopPathUpTo(X, Y, MaxK, K) :-
  schemaVertex(X), schemaVertex(Y),
  between(1, MaxK, K), schemaKHopPath(X, Y, K).

% Does any directed path exist between two schema types?
schemaPath(X, Y) :- schemaPathTrail(X, Y, [X]).
schemaPathTrail(X, Y, _) :- schemaEdge(X, Y, _).
schemaPathTrail(X, Y, Trail) :-
  schemaEdge(X, Z, _), not(member(Z, Trail)),
  schemaPathTrail(Z, Y, [Z|Trail]).

% =====================================================================
% Query constraint mining rules (paper Listing 6).
% =====================================================================

% Hop counts realizable by a variable-length pattern edge.
queryKHopVariableLengthPath(X, Y, K) :-
  queryVariableLengthPath(X, Y, LOWER, UPPER),
  between(LOWER, UPPER, K).

% Hop counts realizable between two query vertices, chaining single
% edges and variable-length segments. A visited trail guards against
% cyclic MATCH patterns (no effect on acyclic ones).
queryKHopPath(X, Y, K) :- queryKHopPathT(X, Y, K, [X]).
queryKHopPathT(X, Y, 1, _) :- queryEdge(X, Y).
queryKHopPathT(X, Y, K, _) :- queryKHopVariableLengthPath(X, Y, K).
queryKHopPathT(X, Y, K, Trail) :-
  queryEdge(X, Z), not(member(Z, Trail)),
  queryKHopPathT(Z, Y, K1, [Z|Trail]), K is K1 + 1.
queryKHopPathT(X, Y, K, Trail) :-
  queryKHopVariableLengthPath(X, Z, K2), not(member(Z, Trail)),
  queryKHopPathT(Z, Y, K1, [Z|Trail]), K is K1 + K2.

% Existence of any path between query vertices.
queryPath(X, Y) :- queryPathTrail(X, Y, [X]).
queryPathTrail(X, Y, _) :- queryEdge(X, Y).
queryPathTrail(X, Y, _) :- queryVariableLengthPath(X, Y, _, _).
queryPathTrail(X, Y, Trail) :-
  queryEdge(X, Z), not(member(Z, Trail)),
  queryPathTrail(Z, Y, [Z|Trail]).
queryPathTrail(X, Y, Trail) :-
  queryVariableLengthPath(X, Z, _, _), not(member(Z, Trail)),
  queryPathTrail(Z, Y, [Z|Trail]).

% Query-graph degrees, sources and sinks (single edges and
% variable-length segments both count as incident).
queryIncomingVertices(X, INLIST) :-
  queryVertex(X),
  findall(SRC, queryAnyEdge(SRC, X), INLIST).
queryOutgoingVertices(X, OUTLIST) :-
  queryVertex(X),
  findall(DST, queryAnyEdge(X, DST), OUTLIST).
queryAnyEdge(X, Y) :- queryEdge(X, Y).
queryAnyEdge(X, Y) :- queryVariableLengthPath(X, Y, _, _).
queryVertexInDegree(X, D) :-
  queryIncomingVertices(X, INLIST), length(INLIST, D).
queryVertexOutDegree(X, D) :-
  queryOutgoingVertices(X, OUTLIST), length(OUTLIST, D).
queryVertexSource(X) :- queryVertexInDegree(X, 0).
queryVertexSink(X) :- queryVertexOutDegree(X, 0).

% Ego-centric K-hop neighborhood of a query vertex (paper Listing 5).
queryVertexKHopNbors(K, X, LIST) :-
  queryVertex(X),
  findall(SRC, queryKHopPath(SRC, X, K), INLIST),
  findall(DST, queryKHopPath(X, DST, K), OUTLIST),
  append(INLIST, OUTLIST, TMPLIST), sort(TMPLIST, LIST).
|}

let view_templates =
  {|
% =====================================================================
% Connector view templates (paper Listing 3).
% =====================================================================

% K-hop connector between projected query vertices X and Y: feasible
% when the query realizes a K-hop path between them AND the schema
% admits K-hop paths between their types.
kHopConnector(X, Y, XTYPE, YTYPE, K) :-
  % query constraints
  queryVertexType(X, XTYPE),
  queryVertexType(Y, YTYPE),
  queryReturned(X), queryReturned(Y),
  queryKHopPath(X, Y, K),
  % schema constraints
  schemaKHopPath(XTYPE, YTYPE, K).

% K-hop connector where both endpoints share a vertex type.
kHopConnectorSameVertexType(X, Y, VTYPE, K) :-
  kHopConnector(X, Y, VTYPE, VTYPE, K).

% Variable-length connector between same-type endpoints.
connectorSameVertexType(X, Y, VTYPE) :-
  % query constraints
  queryVertexType(X, VTYPE),
  queryVertexType(Y, VTYPE),
  queryReturned(X), queryReturned(Y),
  queryPath(X, Y),
  % schema constraints
  schemaPath(VTYPE, VTYPE).

% Source-to-sink variable-length connector.
sourceToSinkConnector(X, Y) :-
  % query constraints
  queryVertexSource(X),
  queryVertexSink(Y),
  queryPath(X, Y),
  % schema constraints
  queryVertexType(X, XTYPE),
  queryVertexType(Y, YTYPE),
  schemaPath(XTYPE, YTYPE).

% Same-edge-type connector: the query traverses edges of one type
% whose domain equals its range (so multi-hop paths compose).
sameEdgeTypeConnector(ETYPE) :-
  queryEdgeType(_, _, ETYPE),
  schemaEdge(T, T, ETYPE).

% =====================================================================
% Summarizer view templates (paper Listing 5, type-level filters).
% =====================================================================

% Keep exactly the vertex types the query mentions.
summarizerVertexInclusion(TYPES) :-
  setof(T, X^queryVertexType(X, T), TYPES).

% Drop vertex types the query never touches (with their edges).
summarizerRemoveVertices(VTYPE_REMOVE) :-
  schemaVertex(VTYPE_REMOVE),
  not(queryVertexType(_, VTYPE_REMOVE)).

% Keep exactly the edge types the query mentions.
summarizerEdgeInclusion(ETYPES) :-
  setof(E, X^Y^queryEdgeType(X, Y, E), ETYPES).

% Drop edge types the query never traverses explicitly. Only safe when
% the query has no unlabeled or variable-length edges (which may
% traverse any type); the enumerator checks that side condition.
summarizerRemoveEdges(ETYPE_REMOVE) :-
  schemaEdge(_, _, ETYPE_REMOVE),
  not(queryEdgeType(_, _, ETYPE_REMOVE)).
|}

let all = mining_rules ^ view_templates

let unconstrained_templates =
  {|
% Ablation: view templates with the query constraints stripped —
% enumeration is driven purely by the schema, bounded by MaxK. This is
% the M^k space the paper's §IV argues constraint injection avoids.
kHopConnectorNoQuery(XTYPE, YTYPE, MaxK, K) :-
  schemaKHopPathUpTo(XTYPE, YTYPE, MaxK, K).

connectorSameVertexTypeNoQuery(VTYPE) :-
  schemaVertex(VTYPE),
  schemaPath(VTYPE, VTYPE).
|}
