let source =
  {|
% ---- list predicates -------------------------------------------------
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

reverse(L, R) :- reverse_acc(L, [], R).
reverse_acc([], Acc, Acc).
reverse_acc([H|T], Acc, R) :- reverse_acc(T, [H|Acc], R).

last([X], X).
last([_|T], X) :- last(T, X).

nth0(0, [X|_], X).
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).

nth1(N, L, X) :- N >= 1, N0 is N - 1, nth0(N0, L, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).

min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).

numlist(L, H, [L]) :- L =:= H.
numlist(L, H, [L|T]) :- L < H, L1 is L + 1, numlist(L1, H, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

subtract([], _, []).
subtract([H|T], L, R) :- memberchk(H, L), subtract(T, L, R).
subtract([H|T], L, [H|R]) :- \+ memberchk(H, L), subtract(T, L, R).

intersection([], _, []).
intersection([H|T], L, [H|R]) :- memberchk(H, L), intersection(T, L, R).
intersection([H|T], L, R) :- \+ memberchk(H, L), intersection(T, L, R).

union([], L, L).
union([H|T], L, R) :- memberchk(H, L), union(T, L, R).
union([H|T], L, [H|R]) :- \+ memberchk(H, L), union(T, L, R).

exclude(_, [], []).
exclude(G, [H|T], R) :- exclude(G, T, R1), ( call(G, H) -> R = R1 ; R = [H|R1] ).

include(_, [], []).
include(G, [H|T], R) :- include(G, T, R1), ( call(G, H) -> R = [H|R1] ; R = R1 ).

% ---- higher-order ----------------------------------------------------
maplist(_, []).
maplist(G, [H|T]) :- call(G, H), maplist(G, T).

maplist(_, [], []).
maplist(G, [X|Xs], [Y|Ys]) :- call(G, X, Y), maplist(G, Xs, Ys).

maplist(_, [], [], []).
maplist(G, [X|Xs], [Y|Ys], [Z|Zs]) :- call(G, X, Y, Z), maplist(G, Xs, Ys, Zs).

foldl(_, [], Acc, Acc).
foldl(G, [X|Xs], Acc0, Acc) :- call(G, X, Acc0, Acc1), foldl(G, Xs, Acc1, Acc).

foldl(_, [], [], Acc, Acc).
foldl(G, [X|Xs], [Y|Ys], Acc0, Acc) :- call(G, X, Y, Acc0, Acc1), foldl(G, Xs, Ys, Acc1, Acc).

% convlist(G, In, Out): map with G, dropping elements on which G fails.
convlist(_, [], []).
convlist(G, [X|Xs], Out) :-
  convlist(G, Xs, Rest),
  ( call(G, X, Y) -> Out = [Y|Rest] ; Out = Rest ).

% ---- misc ------------------------------------------------------------
succ_or_zero(N) :- N >= 0.
|}

let db_with_prelude () =
  let db = Db.create () in
  Db.load db source;
  db

let engine () = Engine.create (db_with_prelude ())
