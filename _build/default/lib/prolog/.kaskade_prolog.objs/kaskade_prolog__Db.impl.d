lib/prolog/db.ml: Hashtbl List Parser Term
