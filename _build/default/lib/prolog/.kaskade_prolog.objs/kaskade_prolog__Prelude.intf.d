lib/prolog/prelude.mli: Db Engine
