lib/prolog/db.mli: Parser Term
