lib/prolog/parser.ml: Array Format Hashtbl Lexer List String Term
