lib/prolog/lexer.mli:
