lib/prolog/term.ml: Array Format Hashtbl List Stdlib String
