lib/prolog/engine.mli: Db Term
