lib/prolog/lexer.ml: Buffer List Printf String
