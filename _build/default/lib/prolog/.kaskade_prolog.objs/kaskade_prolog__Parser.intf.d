lib/prolog/parser.mli: Term
