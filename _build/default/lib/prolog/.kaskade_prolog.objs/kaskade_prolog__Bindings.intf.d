lib/prolog/bindings.mli: Term
