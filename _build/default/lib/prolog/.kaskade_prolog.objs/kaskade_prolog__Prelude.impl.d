lib/prolog/prelude.ml: Db Engine
