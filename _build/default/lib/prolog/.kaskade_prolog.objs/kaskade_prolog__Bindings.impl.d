lib/prolog/bindings.ml: Array Hashtbl Kaskade_util String Term
