lib/prolog/engine.ml: Array Bindings Db Format Hashtbl List Parser Stdlib Term
