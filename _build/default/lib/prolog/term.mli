(** First-order terms for the Prolog inference engine that powers
    Kaskade's constraint-based view enumeration (paper §IV).

    Variables are represented by integer ids; the parser assigns ids to
    named variables and the engine allocates fresh ids when renaming
    clauses apart. Lists use the conventional ['.'/2] functor with
    [[]] as nil. *)

type t =
  | Atom of string
  | Int of int
  | Var of int
  | Compound of string * t array

val atom : string -> t
val int : int -> t
val var : int -> t
val compound : string -> t list -> t
(** [compound f args] is [Atom f] when [args] is empty. *)

val nil : t
val cons : t -> t -> t
val list_of : t list -> t
(** Proper list term. *)

val to_list : t -> t list option
(** Inverse of {!list_of}; [None] when the term is not a proper list. *)

val functor_of : t -> (string * int) option
(** Name/arity of an atom or compound; [None] for variables and ints. *)

val args_of : t -> t array
val is_ground : t -> bool
val vars_of : t -> int list
(** Distinct variable ids, first-occurrence order. *)

val max_var : t -> int
(** Largest variable id occurring in the term, or [-1] if none. *)

val rename : offset:int -> t -> t
(** Shift every variable id by [offset] (clause renaming-apart). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Standard order of terms: Var < Int < Atom < Compound, compounds by
    arity, then name, then args. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
