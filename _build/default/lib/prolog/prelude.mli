(** Library predicates written in Prolog itself ([member/2],
    [append/3], [foldl/4..6], [convlist/3], ...), mirroring the subset
    of the SWI-Prolog library that the paper's constraint-mining rules
    and view templates use (Listings 2, 3, 5, 6). *)

val source : string
(** Program text; load with [Db.load] or [Engine.consult]. *)

val db_with_prelude : unit -> Db.t
(** Fresh clause database pre-loaded with {!source}. *)

val engine : unit -> Engine.t
(** Fresh engine over {!db_with_prelude}. *)
