exception Parse_error of string

type clause = { head : Term.t; body : Term.t; nvars : int }

type assoc = Xfx | Xfy | Yfx

let infix_ops =
  [ (":-", (1200, Xfx));
    ("-->", (1200, Xfx));
    (";", (1100, Xfy));
    ("->", (1050, Xfy));
    (",", (1000, Xfy));
    ("=", (700, Xfx));
    ("\\=", (700, Xfx));
    ("==", (700, Xfx));
    ("\\==", (700, Xfx));
    ("@<", (700, Xfx));
    ("@>", (700, Xfx));
    ("@=<", (700, Xfx));
    ("@>=", (700, Xfx));
    ("is", (700, Xfx));
    ("=..", (700, Xfx));
    ("<", (700, Xfx));
    (">", (700, Xfx));
    ("=<", (700, Xfx));
    (">=", (700, Xfx));
    ("=:=", (700, Xfx));
    ("=\\=", (700, Xfx));
    ("+", (500, Yfx));
    ("-", (500, Yfx));
    ("/\\", (500, Yfx));
    ("\\/", (500, Yfx));
    ("*", (400, Yfx));
    ("/", (400, Yfx));
    ("//", (400, Yfx));
    ("mod", (400, Yfx));
    ("rem", (400, Yfx));
    (">>", (400, Yfx));
    ("<<", (400, Yfx));
    ("^", (200, Xfy)) ]

let prefix_ops = [ (":-", 1200); ("?-", 1200); ("\\+", 900); ("-", 200); ("+", 200) ]

type state = {
  mutable toks : Lexer.token list;
  var_ids : (string, int) Hashtbl.t;
  mutable var_order : (string * int) list;
  mutable next_var : int;
}

let make_state toks = { toks; var_ids = Hashtbl.create 8; var_order = []; next_var = 0 }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let fresh_var st =
  let id = st.next_var in
  st.next_var <- id + 1;
  id

let var_id st name =
  if String.equal name "_" then fresh_var st
  else begin
    match Hashtbl.find_opt st.var_ids name with
    | Some id -> id
    | None ->
      let id = fresh_var st in
      Hashtbl.add st.var_ids name id;
      st.var_order <- (name, id) :: st.var_order;
      id
  end

(* Tokens that can begin a term — used to decide whether an operator
   atom is being applied prefix or stands alone. *)
let starts_term = function
  | Lexer.ATOM _ | Lexer.VAR _ | Lexer.INT _ | Lexer.LPAREN | Lexer.LBRACKET -> true
  | _ -> false

let rec parse st max_prec =
  let left, left_prec = parse_primary st max_prec in
  parse_infix st left left_prec max_prec

and parse_infix st left left_prec max_prec =
  match peek st with
  | Lexer.COMMA when max_prec >= 1000 ->
    advance st;
    let right = parse st 1000 in
    parse_infix st (Term.Compound (",", [| left; right |])) 1000 max_prec
  | Lexer.ATOM name -> begin
    match List.assoc_opt name infix_ops with
    | Some (prec, assoc) when prec <= max_prec ->
      let left_max = match assoc with Yfx -> prec | Xfx | Xfy -> prec - 1 in
      let right_max = match assoc with Xfy -> prec | Xfx | Yfx -> prec - 1 in
      if left_prec > left_max then left
      else begin
        advance st;
        let right = parse st right_max in
        parse_infix st (Term.Compound (name, [| left; right |])) prec max_prec
      end
    | _ -> left
  end
  | _ -> left

and parse_primary st max_prec =
  match peek st with
  | Lexer.INT n ->
    advance st;
    (Term.Int n, 0)
  | Lexer.VAR name ->
    advance st;
    (Term.Var (var_id st name), 0)
  | Lexer.LPAREN ->
    advance st;
    let t = parse st 1200 in
    (match peek st with
    | Lexer.RPAREN ->
      advance st;
      (t, 0)
    | tok -> fail "expected ')', found %s" (Lexer.pp_token tok))
  | Lexer.LBRACKET ->
    advance st;
    (parse_list st, 0)
  | Lexer.ATOM name -> begin
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      (* No space allowed between functor and '(' in real Prolog; our
         lexer drops whitespace so we accept it — harmless here. *)
      advance st;
      let args = parse_args st in
      (Term.Compound (name, Array.of_list args), 0)
    | tok -> begin
      match List.assoc_opt name prefix_ops with
      | Some prec when prec <= max_prec && starts_term tok -> begin
        (* Negative integer literals. *)
        match (name, tok) with
        | "-", Lexer.INT n ->
          advance st;
          (Term.Int (-n), 0)
        | _ ->
          let arg = parse st (prec - 1) in
          (Term.Compound (name, [| arg |]), prec)
      end
      | _ -> (Term.Atom name, 0)
    end
  end
  | tok -> fail "unexpected token %s" (Lexer.pp_token tok)

and parse_args st =
  let first = parse st 999 in
  let rec more acc =
    match peek st with
    | Lexer.COMMA ->
      advance st;
      let t = parse st 999 in
      more (t :: acc)
    | Lexer.RPAREN ->
      advance st;
      List.rev acc
    | tok -> fail "expected ',' or ')' in argument list, found %s" (Lexer.pp_token tok)
  in
  more [ first ]

and parse_list st =
  match peek st with
  | Lexer.RBRACKET ->
    advance st;
    Term.nil
  | _ ->
    let first = parse st 999 in
    let rec more acc =
      match peek st with
      | Lexer.COMMA ->
        advance st;
        let t = parse st 999 in
        more (t :: acc)
      | Lexer.BAR ->
        advance st;
        let tail = parse st 999 in
        (match peek st with
        | Lexer.RBRACKET ->
          advance st;
          List.fold_left (fun tl h -> Term.cons h tl) tail acc
        | tok -> fail "expected ']' after list tail, found %s" (Lexer.pp_token tok))
      | Lexer.RBRACKET ->
        advance st;
        List.fold_left (fun tl h -> Term.cons h tl) Term.nil acc
      | tok -> fail "expected ',', '|' or ']' in list, found %s" (Lexer.pp_token tok)
    in
    more [ first ]

let parse_term src =
  let st = make_state (Lexer.tokenize src) in
  let t = parse st 1200 in
  (match peek st with
  | Lexer.EOF | Lexer.DOT -> ()
  | tok -> fail "trailing input after term: %s" (Lexer.pp_token tok));
  (t, List.rev st.var_order)

let parse_query = parse_term

let clause_of_term t =
  let head, body =
    match t with
    | Term.Compound (":-", [| h; b |]) -> (h, b)
    | other -> (other, Term.Atom "true")
  in
  (match head with
  | Term.Atom _ | Term.Compound _ -> ()
  | _ -> fail "clause head must be an atom or compound term: %s" (Term.to_string head));
  { head; body; nvars = Term.max_var t + 1 }

let parse_program src =
  let toks = Lexer.tokenize src in
  let rec split acc current = function
    | [] -> if current = [] then List.rev acc else fail "missing final '.' in program"
    | Lexer.DOT :: rest -> split (List.rev current :: acc) [] rest
    | Lexer.EOF :: _ -> if current = [] then List.rev acc else fail "missing final '.' in program"
    | tok :: rest -> split acc (tok :: current) rest
  in
  let clause_toks = split [] [] toks in
  List.map
    (fun toks ->
      let st = make_state (toks @ [ Lexer.EOF ]) in
      let t = parse st 1200 in
      (match peek st with
      | Lexer.EOF -> ()
      | tok -> fail "trailing input in clause: %s" (Lexer.pp_token tok));
      clause_of_term t)
    clause_toks
