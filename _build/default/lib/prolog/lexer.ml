type token =
  | ATOM of string
  | VAR of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | BAR
  | DOT
  | EOF

exception Lex_error of string * int

let pp_token = function
  | ATOM s -> Printf.sprintf "atom(%s)" s
  | VAR s -> Printf.sprintf "var(%s)" s
  | INT n -> Printf.sprintf "int(%d)" n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | BAR -> "|"
  | DOT -> "."
  | EOF -> "<eof>"

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_lower c || is_upper c || is_digit c
let is_symbol_char c = String.contains "+-*/\\^<>=~:.?@#&$" c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      let start = !i in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Lex_error ("unterminated block comment", start))
    end
    else if c = '(' then begin
      emit LPAREN;
      incr i
    end
    else if c = ')' then begin
      emit RPAREN;
      incr i
    end
    else if c = '[' then begin
      emit LBRACKET;
      incr i
    end
    else if c = ']' then begin
      emit RBRACKET;
      incr i
    end
    else if c = ',' then begin
      emit COMMA;
      incr i
    end
    else if c = '|' then begin
      emit BAR;
      incr i
    end
    else if c = '!' then begin
      emit (ATOM "!");
      incr i
    end
    else if c = ';' then begin
      emit (ATOM ";");
      incr i
    end
    else if c = '\'' then begin
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else if src.[!i] = '\\' && !i + 1 < n then begin
          let esc = src.[!i + 1] in
          let ch = match esc with 'n' -> '\n' | 't' -> '\t' | '\\' -> '\\' | '\'' -> '\'' | other -> other in
          Buffer.add_char buf ch;
          i := !i + 2
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated quoted atom", start));
      emit (ATOM (Buffer.contents buf))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_lower c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do
        incr i
      done;
      emit (ATOM (String.sub src start (!i - start)))
    end
    else if is_upper c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do
        incr i
      done;
      emit (VAR (String.sub src start (!i - start)))
    end
    else if is_symbol_char c then begin
      let start = !i in
      while !i < n && is_symbol_char src.[!i] do
        incr i
      done;
      let sym = String.sub src start (!i - start) in
      (* A lone '.' (not part of a longer symbol) terminates a clause. *)
      if sym = "." then emit DOT else emit (ATOM sym)
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i))
  done;
  emit EOF;
  List.rev !tokens
