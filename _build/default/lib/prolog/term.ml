type t =
  | Atom of string
  | Int of int
  | Var of int
  | Compound of string * t array

let atom s = Atom s
let int n = Int n
let var i = Var i

let compound f args = match args with [] -> Atom f | _ -> Compound (f, Array.of_list args)

let nil = Atom "[]"
let cons h t = Compound (".", [| h; t |])
let list_of items = List.fold_right cons items nil

let to_list t =
  let rec go acc = function
    | Atom "[]" -> Some (List.rev acc)
    | Compound (".", [| h; tl |]) -> go (h :: acc) tl
    | _ -> None
  in
  go [] t

let functor_of = function
  | Atom name -> Some (name, 0)
  | Compound (name, args) -> Some (name, Array.length args)
  | Int _ | Var _ -> None

let args_of = function Compound (_, args) -> args | _ -> [||]

let rec is_ground = function
  | Atom _ | Int _ -> true
  | Var _ -> false
  | Compound (_, args) -> Array.for_all is_ground args

let vars_of t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Atom _ | Int _ -> ()
    | Var i ->
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        out := i :: !out
      end
    | Compound (_, args) -> Array.iter go args
  in
  go t;
  List.rev !out

let rec max_var = function
  | Atom _ | Int _ -> -1
  | Var i -> i
  | Compound (_, args) -> Array.fold_left (fun acc a -> Stdlib.max acc (max_var a)) (-1) args

let rec rename ~offset = function
  | (Atom _ | Int _) as t -> t
  | Var i -> Var (i + offset)
  | Compound (f, args) -> Compound (f, Array.map (rename ~offset) args)

let rec equal a b =
  match (a, b) with
  | Atom x, Atom y -> String.equal x y
  | Int x, Int y -> x = y
  | Var x, Var y -> x = y
  | Compound (f, xs), Compound (g, ys) ->
    String.equal f g && Array.length xs = Array.length ys
    && begin
         let ok = ref true in
         Array.iteri (fun i x -> if !ok && not (equal x ys.(i)) then ok := false) xs;
         !ok
       end
  | _ -> false

let order_rank = function Var _ -> 0 | Int _ -> 1 | Atom _ -> 2 | Compound _ -> 3

let rec compare a b =
  match (a, b) with
  | Var x, Var y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Atom x, Atom y -> String.compare x y
  | Compound (f, xs), Compound (g, ys) ->
    let c = Stdlib.compare (Array.length xs) (Array.length ys) in
    if c <> 0 then c
    else begin
      let c = String.compare f g in
      if c <> 0 then c
      else begin
        let result = ref 0 in
        (try
           Array.iteri
             (fun i x ->
               let c = compare x ys.(i) in
               if c <> 0 then begin
                 result := c;
                 raise Exit
               end)
             xs
         with Exit -> ());
        !result
      end
    end
  | _ -> Stdlib.compare (order_rank a) (order_rank b)

let needs_quotes s =
  String.length s = 0
  || begin
       let ok_unquoted =
         (s.[0] >= 'a' && s.[0] <= 'z')
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
              s
       in
       let symbolic = String.for_all (fun c -> String.contains "+-*/\\^<>=~:.?@#&" c) s in
       (not ok_unquoted) && (not symbolic) && s <> "[]" && s <> "!" && s <> ";" && s <> ","
     end

let pp_atom ppf s = if needs_quotes s then Format.fprintf ppf "'%s'" s else Format.pp_print_string ppf s

let rec pp ppf t =
  match t with
  | Atom s -> pp_atom ppf s
  | Int n -> Format.pp_print_int ppf n
  | Var i -> Format.fprintf ppf "_G%d" i
  | Compound (".", [| _; _ |]) -> pp_list ppf t
  | Compound (",", [| a; b |]) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Compound (f, args) ->
    Format.fprintf ppf "%a(" pp_atom f;
    Array.iteri (fun i a -> if i > 0 then Format.fprintf ppf ", %a" pp a else pp ppf a) args;
    Format.fprintf ppf ")"

and pp_list ppf t =
  Format.fprintf ppf "[";
  let rec go first = function
    | Atom "[]" -> ()
    | Compound (".", [| h; tl |]) ->
      if not first then Format.fprintf ppf ", ";
      pp ppf h;
      go false tl
    | other -> Format.fprintf ppf " | %a" pp other
  in
  go true t;
  Format.fprintf ppf "]"

let to_string t = Format.asprintf "%a" pp t
