(** Clause database indexed by predicate name/arity, preserving
    insertion order (Prolog clause-selection semantics). *)

type t

val create : unit -> t
val copy : t -> t
(** Independent snapshot — used to run enumeration ablations against
    the same fact base with different rule sets. *)

val assertz : t -> Parser.clause -> unit
(** Append a clause to its predicate. *)

val asserta : t -> Parser.clause -> unit
(** Prepend a clause to its predicate. *)

val add_fact : t -> Term.t -> unit
(** [assertz] of a fact (body [true]); the term must be ground or the
    caller takes responsibility for its variable numbering. *)

val retract_all : t -> string -> int -> unit
(** Drop every clause of the named predicate. *)

val clauses : t -> string -> int -> Parser.clause list
(** Clauses of [name/arity] in order; empty if unknown. *)

val load : t -> string -> unit
(** Parse a Prolog program and assert all of its clauses. *)

val predicates : t -> (string * int) list
val clause_count : t -> int
