type t = { tbl : (string * int, Parser.clause list ref) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let copy t =
  let tbl = Hashtbl.create (Hashtbl.length t.tbl) in
  Hashtbl.iter (fun k v -> Hashtbl.add tbl k (ref !v)) t.tbl;
  { tbl }

let key_of_clause (c : Parser.clause) =
  match Term.functor_of c.head with
  | Some key -> key
  | None -> invalid_arg "Db: clause head is not callable"

let assertz t c =
  let key = key_of_clause c in
  match Hashtbl.find_opt t.tbl key with
  | Some cell -> cell := !cell @ [ c ]
  | None -> Hashtbl.add t.tbl key (ref [ c ])

let asserta t c =
  let key = key_of_clause c in
  match Hashtbl.find_opt t.tbl key with
  | Some cell -> cell := c :: !cell
  | None -> Hashtbl.add t.tbl key (ref [ c ])

let add_fact t head = assertz t { head; body = Term.Atom "true"; nvars = Term.max_var head + 1 }

let retract_all t name arity = Hashtbl.remove t.tbl (name, arity)

let clauses t name arity =
  match Hashtbl.find_opt t.tbl (name, arity) with Some cell -> !cell | None -> []

let load t src = List.iter (assertz t) (Parser.parse_program src)

let predicates t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let clause_count t = Hashtbl.fold (fun _ cell acc -> acc + List.length !cell) t.tbl 0
