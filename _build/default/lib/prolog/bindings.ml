type t = {
  tbl : (int, Term.t) Hashtbl.t;
  trail : Kaskade_util.Int_vec.t;
  mutable next_var : int;
}

let create () = { tbl = Hashtbl.create 256; trail = Kaskade_util.Int_vec.create (); next_var = 0 }

let fresh t =
  let id = t.next_var in
  t.next_var <- id + 1;
  id

let reserve t bound = if bound > t.next_var then t.next_var <- bound

let mark t = Kaskade_util.Int_vec.length t.trail

let undo_to t m =
  let len = Kaskade_util.Int_vec.length t.trail in
  for i = len - 1 downto m do
    Hashtbl.remove t.tbl (Kaskade_util.Int_vec.get t.trail i)
  done;
  Kaskade_util.Int_vec.truncate t.trail m

let rec walk t term =
  match term with
  | Term.Var i -> begin
    match Hashtbl.find_opt t.tbl i with Some bound -> walk t bound | None -> term
  end
  | _ -> term

let rec resolve t term =
  match walk t term with
  | (Term.Atom _ | Term.Int _ | Term.Var _) as r -> r
  | Term.Compound (f, args) -> Term.Compound (f, Array.map (resolve t) args)

let bind t i term =
  Hashtbl.replace t.tbl i term;
  Kaskade_util.Int_vec.push t.trail i

let rec unify t a b =
  let a = walk t a and b = walk t b in
  match (a, b) with
  | Term.Var i, Term.Var j when i = j -> true
  | Term.Var i, other | other, Term.Var i ->
    bind t i other;
    true
  | Term.Atom x, Term.Atom y -> String.equal x y
  | Term.Int x, Term.Int y -> x = y
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
    String.equal f g
    && Array.length xs = Array.length ys
    && begin
         let ok = ref true in
         let i = ref 0 in
         while !ok && !i < Array.length xs do
           if not (unify t xs.(!i) ys.(!i)) then ok := false;
           incr i
         done;
         !ok
       end
  | _ -> false
