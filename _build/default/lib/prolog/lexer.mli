(** Tokenizer for ISO-flavoured Prolog source (the syntax of the
    paper's Listings 2, 3, 5 and 6). Supports [%] line comments and
    [/* ... */] block comments, quoted atoms, integers, named
    variables, and symbolic operators. *)

type token =
  | ATOM of string     (* foo, 'Job', + , =< , ... *)
  | VAR of string      (* X, _Trail, _ *)
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | BAR
  | DOT                (* end of clause *)
  | EOF

exception Lex_error of string * int
(** Message and (0-based) position in the input. *)

val tokenize : string -> token list
val pp_token : token -> string
