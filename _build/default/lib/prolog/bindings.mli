(** Mutable variable bindings with a trail, so the solver can undo the
    effects of a failed branch in O(bindings made on that branch). *)

type t

val create : unit -> t

val fresh : t -> int
(** Allocate a fresh variable id (above every id seen so far). *)

val reserve : t -> int -> unit
(** Ensure ids below the given bound are never handed out by {!fresh}
    (call before injecting a parsed term with its own numbering). *)

val mark : t -> int
(** Current trail position — pass to {!undo_to} to roll back. *)

val undo_to : t -> int -> unit

val walk : t -> Term.t -> Term.t
(** Chase variable bindings at the top level only. *)

val resolve : t -> Term.t -> Term.t
(** Deep substitution: replace every bound variable recursively. *)

val unify : t -> Term.t -> Term.t -> bool
(** Attempt unification, recording new bindings on the trail. On
    failure the caller must {!undo_to} its mark (partial bindings may
    remain otherwise). No occurs check — same default as SWI-Prolog,
    and the Kaskade rule library never builds cyclic terms. *)
