(** Operator-precedence parser for Prolog terms and programs.

    Handles the standard operator table (clause neck [:-], control
    [;], [->], [,], negation [\+], comparison/arithmetic operators),
    compound terms, and list syntax — enough to parse the paper's
    constraint-mining rules and view templates verbatim. *)

exception Parse_error of string

type clause = {
  head : Term.t;
  body : Term.t;  (** [Atom "true"] for facts. *)
  nvars : int;  (** Number of distinct variables; ids are [0..nvars-1]. *)
}

val parse_term : string -> Term.t * (string * int) list
(** Parse a single term (no trailing dot required); also returns the
    variable-name -> id mapping so callers can report bindings by
    name. Underscore variables are anonymous (each occurrence fresh)
    and omitted from the mapping. *)

val parse_program : string -> clause list
(** Parse a sequence of dot-terminated clauses. A term [H :- B] yields
    head/body; any other term is a fact. *)

val parse_query : string -> Term.t * (string * int) list
(** Like {!parse_term} but tolerates a trailing dot. *)

val clause_of_term : Term.t -> clause
(** Split a (already-numbered) term into head/body. *)
