(** Property values attached to vertices and edges of a property graph
    (paper §III-A: vertices and edges are typed and may carry key-value
    properties). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val equal : t -> t -> bool
val compare : t -> t -> int
(** Null < Bool < numeric < Str; Int and Float compare numerically. *)

val to_float : t -> float option
(** Numeric view of [Int]/[Float]/[Bool]; [None] otherwise. *)

val is_truthy : t -> bool
(** Cypher-ish truthiness: [Null] and [Bool false] are false. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Numeric arithmetic; [Str] concatenation for [add]; [Null]
    propagates; anything else raises [Invalid_argument]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
