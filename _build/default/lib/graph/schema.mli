(** Property-graph schema: named vertex types and edge types with
    domain and range (paper §III-A). The schema captures constraints
    such as "an edge of type WRITES_TO only connects Job to File" —
    the structural information Kaskade mines for view enumeration. *)

type edge_def = {
  name : string;
  src : string;  (** Domain vertex type. *)
  dst : string;  (** Range vertex type. *)
}

type t

val define : vertices:string list -> edges:(string * string * string) list -> t
(** [define ~vertices ~edges] where each edge is
    [(src_type, edge_name, dst_type)]. Raises [Invalid_argument] on
    duplicate names or unknown endpoint types. Edge names must be
    unique (one domain/range per edge type, as in the paper's
    provenance schema). *)

val vertex_types : t -> string list
(** In declaration order; ids are positions in this list. *)

val edge_defs : t -> edge_def list

val vertex_type_id : t -> string -> int
(** Raises [Not_found]. *)

val vertex_type_name : t -> int -> string
val n_vertex_types : t -> int
val n_edge_types : t -> int

val edge_type_id : t -> string -> int
val edge_type_name : t -> int -> string
val edge_src : t -> int -> int
val edge_dst : t -> int -> int

val edge_types_from : t -> int -> int list
(** Edge-type ids whose domain is the given vertex-type id. *)

val edge_types_between : t -> int -> int -> int list
val has_vertex_type : t -> string -> bool
val has_edge_type : t -> string -> bool

val is_homogeneous : t -> bool
(** One vertex type and at most one edge type (paper footnote 1). *)

val restrict : t -> keep_vertices:string list -> t
(** Sub-schema induced by a vertex-type subset: keeps those vertex
    types and every edge type whose endpoints both survive. Used when
    describing summarizer outputs. *)

val add_edge_type : t -> src:string -> name:string -> dst:string -> t
(** Extended schema with one more edge type — how connector views
    announce their contracted-edge type (e.g. JOB_TO_JOB_2HOP). *)

val pp : Format.formatter -> t -> unit
