lib/graph/gio.mli: Graph
