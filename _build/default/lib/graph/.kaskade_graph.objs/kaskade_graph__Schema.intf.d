lib/graph/schema.mli: Format
