lib/graph/graph.mli: Builder Format Schema Value
