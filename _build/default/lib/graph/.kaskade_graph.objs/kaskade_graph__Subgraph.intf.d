lib/graph/subgraph.mli: Graph Schema
