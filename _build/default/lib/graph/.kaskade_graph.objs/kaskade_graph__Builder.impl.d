lib/graph/builder.ml: Int_vec Kaskade_util List Printf Props Schema
