lib/graph/props.ml: Hashtbl List Value
