lib/graph/vindex.mli: Graph Value
