lib/graph/props.mli: Value
