lib/graph/graph.ml: Array Builder Format Int_vec Kaskade_util Props Schema Table
