lib/graph/value.ml: Format Stdlib String
