lib/graph/vindex.ml: Graph Hashtbl List Value
