lib/graph/gstats.ml: Array Format Graph Kaskade_util List Schema Stdlib Table
