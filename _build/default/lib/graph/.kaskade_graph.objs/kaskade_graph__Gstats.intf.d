lib/graph/gstats.mli: Format Graph
