lib/graph/subgraph.ml: Array Builder Graph List Schema
