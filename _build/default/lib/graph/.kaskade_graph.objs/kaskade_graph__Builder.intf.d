lib/graph/builder.mli: Kaskade_util Props Schema Value
