lib/graph/gio.ml: Buffer Builder Char Fun Graph List Printf Schema String Value
