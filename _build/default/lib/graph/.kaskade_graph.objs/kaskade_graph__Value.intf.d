lib/graph/value.mli: Format
