lib/graph/schema.ml: Array Format Hashtbl List String
