(** Plain-text serialization of property graphs (schema + vertices +
    edges + properties), so real datasets can be loaded instead of the
    synthetic generators. Line-oriented format, stable across
    versions:

    {v
    kaskade-graph 1
    vtype <name>
    etype <src-type> <name> <dst-type>
    v <id> <type> [key=T:value ...]
    e <src> <dst> <type> [key=T:value ...]
    v}

    where [T] is one of [i] (int), [f] (float), [s] (percent-encoded
    string), [b] (bool), [n] (null). Vertex ids must be dense and in
    order (they are re-checked at load). *)

val to_string : Graph.t -> string
val save : Graph.t -> string -> unit
(** [save g path]. *)

exception Format_error of string * int
(** Message and 1-based line number. *)

val of_string : string -> Graph.t
val load : string -> Graph.t
(** [load path]. *)
