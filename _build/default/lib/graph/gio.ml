exception Format_error of string * int

let magic = "kaskade-graph 1"

let encode_str s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '%' || c = ' ' || c = '\t' || c = '\n' || c = '=' then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_str s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let encode_value = function
  | Value.Null -> "n:"
  | Value.Bool b -> "b:" ^ string_of_bool b
  | Value.Int n -> "i:" ^ string_of_int n
  | Value.Float f -> "f:" ^ Printf.sprintf "%h" f
  | Value.Str s -> "s:" ^ encode_str s

let decode_value line_no s =
  if String.length s < 2 || s.[1] <> ':' then raise (Format_error ("bad value " ^ s, line_no));
  let payload = String.sub s 2 (String.length s - 2) in
  match s.[0] with
  | 'n' -> Value.Null
  | 'b' -> Value.Bool (bool_of_string payload)
  | 'i' -> Value.Int (int_of_string payload)
  | 'f' -> Value.Float (float_of_string payload)
  | 's' -> Value.Str (decode_str payload)
  | c -> raise (Format_error (Printf.sprintf "unknown value tag %c" c, line_no))

let encode_props props =
  String.concat " " (List.map (fun (k, v) -> encode_str k ^ "=" ^ encode_value v) props)

let decode_props line_no fields =
  List.map
    (fun field ->
      match String.index_opt field '=' with
      | Some i ->
        ( decode_str (String.sub field 0 i),
          decode_value line_no (String.sub field (i + 1) (String.length field - i - 1)) )
      | None -> raise (Format_error ("bad property " ^ field, line_no)))
    fields

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  let schema = Graph.schema g in
  List.iter (fun t -> Buffer.add_string buf ("vtype " ^ encode_str t ^ "\n")) (Schema.vertex_types schema);
  List.iter
    (fun (d : Schema.edge_def) ->
      Buffer.add_string buf
        (Printf.sprintf "etype %s %s %s\n" (encode_str d.src) (encode_str d.name) (encode_str d.dst)))
    (Schema.edge_defs schema);
  for v = 0 to Graph.n_vertices g - 1 do
    let props = Graph.vertex_props g v in
    Buffer.add_string buf
      (Printf.sprintf "v %d %s%s\n" v
         (encode_str (Graph.vertex_type_name g v))
         (if props = [] then "" else " " ^ encode_props props))
  done;
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype ->
      let props = Graph.edge_props g eid in
      Buffer.add_string buf
        (Printf.sprintf "e %d %d %s%s\n" src dst
           (encode_str (Schema.edge_type_name schema etype))
           (if props = [] then "" else " " ^ encode_props props)));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let vtypes = ref [] and etypes = ref [] in
  let vertex_lines = ref [] and edge_lines = ref [] in
  List.iteri
    (fun idx line ->
      let line_no = idx + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if line_no = 1 then begin
        if line <> magic then raise (Format_error ("bad magic: " ^ line, line_no))
      end
      else begin
        match String.split_on_char ' ' line with
        | "vtype" :: name :: [] -> vtypes := decode_str name :: !vtypes
        | "etype" :: src :: name :: dst :: [] ->
          etypes := (decode_str src, decode_str name, decode_str dst) :: !etypes
        | "v" :: id :: ty :: props -> vertex_lines := (line_no, int_of_string id, decode_str ty, props) :: !vertex_lines
        | "e" :: src :: dst :: ty :: props ->
          edge_lines := (line_no, int_of_string src, int_of_string dst, decode_str ty, props) :: !edge_lines
        | _ -> raise (Format_error ("unrecognized line: " ^ line, line_no))
      end)
    lines;
  let schema = Schema.define ~vertices:(List.rev !vtypes) ~edges:(List.rev !etypes) in
  let b = Builder.create schema in
  List.iter
    (fun (line_no, id, ty, props) ->
      let got = Builder.add_vertex b ~vtype:ty ~props:(decode_props line_no props) () in
      if got <> id then
        raise (Format_error (Printf.sprintf "vertex ids must be dense and ordered (expected %d, got %d)" got id, line_no)))
    (List.rev !vertex_lines);
  List.iter
    (fun (line_no, src, dst, ty, props) ->
      try ignore (Builder.add_edge b ~src ~dst ~etype:ty ~props:(decode_props line_no props) ())
      with Invalid_argument msg -> raise (Format_error (msg, line_no)))
    (List.rev !edge_lines);
  Graph.freeze b

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n |> of_string)
