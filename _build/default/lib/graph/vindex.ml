type t = {
  g : Graph.t;
  tables : (string, (Value.t, int list) Hashtbl.t) Hashtbl.t;
  mutable builds : int;
}

let create g = { g; tables = Hashtbl.create 8; builds = 0 }

let build t prop =
  let table = Hashtbl.create 1024 in
  for v = Graph.n_vertices t.g - 1 downto 0 do
    match Graph.vprop t.g v prop with
    | Some value -> begin
      match Hashtbl.find_opt table value with
      | Some ids -> Hashtbl.replace table value (v :: ids)
      | None -> Hashtbl.add table value [ v ]
    end
    | None -> ()
  done;
  t.builds <- t.builds + 1;
  Hashtbl.add t.tables prop table;
  table

let lookup t ~prop value =
  let table =
    match Hashtbl.find_opt t.tables prop with Some tbl -> tbl | None -> build t prop
  in
  match Hashtbl.find_opt table value with Some ids -> ids | None -> []

let indexed_props t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort compare

let build_count t = t.builds
