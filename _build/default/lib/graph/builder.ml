open Kaskade_util

type t = {
  schema : Schema.t;
  vtypes : Int_vec.t;
  e_src : Int_vec.t;
  e_dst : Int_vec.t;
  e_type : Int_vec.t;
  vprops : Props.t;
  eprops : Props.t;
}

let create schema =
  {
    schema;
    vtypes = Int_vec.create ~capacity:1024 ();
    e_src = Int_vec.create ~capacity:4096 ();
    e_dst = Int_vec.create ~capacity:4096 ();
    e_type = Int_vec.create ~capacity:4096 ();
    vprops = Props.create ();
    eprops = Props.create ();
  }

let schema t = t.schema

let add_vertex t ~vtype ?(props = []) () =
  let vtid =
    try Schema.vertex_type_id t.schema vtype
    with Not_found -> invalid_arg ("Builder.add_vertex: unknown vertex type " ^ vtype)
  in
  let id = Int_vec.length t.vtypes in
  Int_vec.push t.vtypes vtid;
  List.iter (fun (k, v) -> Props.set t.vprops id k v) props;
  id

let add_edge t ~src ~dst ~etype ?(props = []) () =
  let etid =
    try Schema.edge_type_id t.schema etype
    with Not_found -> invalid_arg ("Builder.add_edge: unknown edge type " ^ etype)
  in
  let n = Int_vec.length t.vtypes in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Builder.add_edge: endpoint out of range";
  let src_t = Int_vec.get t.vtypes src and dst_t = Int_vec.get t.vtypes dst in
  if Schema.edge_src t.schema etid <> src_t || Schema.edge_dst t.schema etid <> dst_t then
    invalid_arg
      (Printf.sprintf "Builder.add_edge: edge %s requires (%s)->(%s) but got (%s)->(%s)" etype
         (Schema.vertex_type_name t.schema (Schema.edge_src t.schema etid))
         (Schema.vertex_type_name t.schema (Schema.edge_dst t.schema etid))
         (Schema.vertex_type_name t.schema src_t)
         (Schema.vertex_type_name t.schema dst_t));
  let id = Int_vec.length t.e_src in
  Int_vec.push t.e_src src;
  Int_vec.push t.e_dst dst;
  Int_vec.push t.e_type etid;
  List.iter (fun (k, v) -> Props.set t.eprops id k v) props;
  id

let set_vertex_prop t id k v =
  if id < 0 || id >= Int_vec.length t.vtypes then invalid_arg "Builder.set_vertex_prop: bad id";
  Props.set t.vprops id k v

let set_edge_prop t id k v =
  if id < 0 || id >= Int_vec.length t.e_src then invalid_arg "Builder.set_edge_prop: bad id";
  Props.set t.eprops id k v

let vertex_count t = Int_vec.length t.vtypes
let edge_count t = Int_vec.length t.e_src
let vertex_type t id = Int_vec.get t.vtypes id

(* Internal accessors for Graph.freeze. *)
let internal_vtypes t = t.vtypes
let internal_edges t = (t.e_src, t.e_dst, t.e_type)
let internal_props t = (t.vprops, t.eprops)
