(** Mutable property-graph construction. The builder enforces the
    schema's domain/range constraints at insertion time, so a frozen
    {!Graph.t} is schema-consistent by construction — the guarantee
    Kaskade's constraint mining relies on. *)

type t

val create : Schema.t -> t
val schema : t -> Schema.t

val add_vertex : t -> vtype:string -> ?props:(string * Value.t) list -> unit -> int
(** Returns the new vertex id (dense, starting at 0). Raises
    [Invalid_argument] on an unknown vertex type. *)

val add_edge : t -> src:int -> dst:int -> etype:string -> ?props:(string * Value.t) list -> unit -> int
(** Returns the new edge id. Raises [Invalid_argument] if the edge
    type is unknown or its domain/range does not match the endpoint
    vertex types, or if an endpoint id is out of range. *)

val set_vertex_prop : t -> int -> string -> Value.t -> unit
val set_edge_prop : t -> int -> string -> Value.t -> unit

val vertex_count : t -> int
val edge_count : t -> int
val vertex_type : t -> int -> int

(**/**)

(* Raw storage handed to [Graph.freeze]; not part of the public API. *)
val internal_vtypes : t -> Kaskade_util.Int_vec.t
val internal_edges : t -> Kaskade_util.Int_vec.t * Kaskade_util.Int_vec.t * Kaskade_util.Int_vec.t
val internal_props : t -> Props.t * Props.t
