(** Frozen, immutable property graph in CSR (compressed sparse row)
    form — the in-memory execution substrate standing in for Neo4j's
    store. Both out- and in-adjacency are materialized so traversals
    run in either direction; edges keep their builder ids so
    properties survive freezing. *)

type t

val freeze : Builder.t -> t
(** O(V + E). The builder may keep being used afterwards; the frozen
    graph shares property tables but copies topology. *)

val schema : t -> Schema.t
val n_vertices : t -> int
val n_edges : t -> int

val vertex_type : t -> int -> int
val vertex_type_name : t -> int -> string
val vertices_of_type : t -> int -> int array
(** Shared array — do not mutate. *)

val vertices_of_type_name : t -> string -> int array
val count_of_type : t -> int -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (dst:int -> etype:int -> eid:int -> unit) -> unit
val iter_in : t -> int -> (src:int -> etype:int -> eid:int -> unit) -> unit

val iter_out_etype : t -> int -> etype:int -> (dst:int -> eid:int -> unit) -> unit
(** Out-edges restricted to one edge type. *)

val iter_in_etype : t -> int -> etype:int -> (src:int -> eid:int -> unit) -> unit

val out_neighbors : t -> int -> int array
(** Fresh array of destination ids (possibly with duplicates for
    parallel edges). *)

val iter_edges : t -> (eid:int -> src:int -> dst:int -> etype:int -> unit) -> unit
val edge_endpoints : t -> int -> int * int
val edge_type : t -> int -> int

val vprop : t -> int -> string -> Value.t option
val vprop_or_null : t -> int -> string -> Value.t
val eprop : t -> int -> string -> Value.t option
val eprop_or_null : t -> int -> string -> Value.t

val vertex_props : t -> int -> (string * Value.t) list
(** All properties of a vertex (sorted by name). O(#columns). *)

val edge_props : t -> int -> (string * Value.t) list
val vertex_prop_keys : t -> string list
val edge_prop_keys : t -> string list

val out_degrees_of_type : t -> int -> int array
(** Fresh array: out-degree of every vertex of the given type, in
    vertex order — the raw input to the degree-percentile estimator. *)

val all_out_degrees : t -> int array

val pp_summary : Format.formatter -> t -> unit
(** One-line [|V|, |E|] plus per-type counts. *)
