type edge_def = { name : string; src : string; dst : string }

type t = {
  vnames : string array;
  edefs : edge_def array;
  v_by_name : (string, int) Hashtbl.t;
  e_by_name : (string, int) Hashtbl.t;
  e_src : int array;
  e_dst : int array;
}

let build vnames edefs =
  let v_by_name = Hashtbl.create 8 in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem v_by_name name then invalid_arg ("Schema: duplicate vertex type " ^ name);
      Hashtbl.add v_by_name name i)
    vnames;
  let e_by_name = Hashtbl.create 8 in
  let lookup_v name =
    match Hashtbl.find_opt v_by_name name with
    | Some id -> id
    | None -> invalid_arg ("Schema: unknown vertex type " ^ name)
  in
  let e_src = Array.make (Array.length edefs) 0 in
  let e_dst = Array.make (Array.length edefs) 0 in
  Array.iteri
    (fun i (d : edge_def) ->
      if Hashtbl.mem e_by_name d.name then invalid_arg ("Schema: duplicate edge type " ^ d.name);
      Hashtbl.add e_by_name d.name i;
      e_src.(i) <- lookup_v d.src;
      e_dst.(i) <- lookup_v d.dst)
    edefs;
  { vnames; edefs; v_by_name; e_by_name; e_src; e_dst }

let define ~vertices ~edges =
  let edefs = List.map (fun (src, name, dst) -> { name; src; dst }) edges in
  build (Array.of_list vertices) (Array.of_list edefs)

let vertex_types t = Array.to_list t.vnames
let edge_defs t = Array.to_list t.edefs

let vertex_type_id t name =
  match Hashtbl.find_opt t.v_by_name name with Some id -> id | None -> raise Not_found

let vertex_type_name t id = t.vnames.(id)
let n_vertex_types t = Array.length t.vnames
let n_edge_types t = Array.length t.edefs

let edge_type_id t name =
  match Hashtbl.find_opt t.e_by_name name with Some id -> id | None -> raise Not_found

let edge_type_name t id = t.edefs.(id).name
let edge_src t id = t.e_src.(id)
let edge_dst t id = t.e_dst.(id)

let edge_types_from t vtid =
  let out = ref [] in
  for i = Array.length t.edefs - 1 downto 0 do
    if t.e_src.(i) = vtid then out := i :: !out
  done;
  !out

let edge_types_between t src dst =
  let out = ref [] in
  for i = Array.length t.edefs - 1 downto 0 do
    if t.e_src.(i) = src && t.e_dst.(i) = dst then out := i :: !out
  done;
  !out

let has_vertex_type t name = Hashtbl.mem t.v_by_name name
let has_edge_type t name = Hashtbl.mem t.e_by_name name

let is_homogeneous t = Array.length t.vnames = 1 && Array.length t.edefs <= 1

let restrict t ~keep_vertices =
  let keep = List.filter (Hashtbl.mem t.v_by_name) keep_vertices in
  let keep_set = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace keep_set v ()) keep;
  let edges =
    Array.to_list t.edefs
    |> List.filter (fun (d : edge_def) -> Hashtbl.mem keep_set d.src && Hashtbl.mem keep_set d.dst)
    |> List.map (fun (d : edge_def) -> (d.src, d.name, d.dst))
  in
  define ~vertices:keep ~edges

let add_edge_type t ~src ~name ~dst =
  let vertices = vertex_types t in
  let edges = List.map (fun (d : edge_def) -> (d.src, d.name, d.dst)) (edge_defs t) in
  define ~vertices ~edges:(edges @ [ (src, name, dst) ])

let pp ppf t =
  Format.fprintf ppf "@[<v>vertex types: %s@,edges:@," (String.concat ", " (vertex_types t));
  Array.iter (fun (d : edge_def) -> Format.fprintf ppf "  (%s)-[:%s]->(%s)@," d.src d.name d.dst) t.edefs;
  Format.fprintf ppf "@]"
