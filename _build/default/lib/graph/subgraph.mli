(** Derive new graphs from existing ones: predicate-based restriction
    (the engine-level primitive behind summarizer views) and edge
    prefixes (the "first n edges" sweep of the paper's Fig. 5). *)

type mapping = {
  old_of_new_vertex : int array;  (** New vertex id -> original id. *)
  new_of_old_vertex : int array;  (** Original id -> new id or -1. *)
}

val restrict :
  ?vertex_pred:(int -> bool) ->
  ?edge_pred:(eid:int -> src:int -> dst:int -> etype:int -> bool) ->
  ?schema:Schema.t ->
  Graph.t ->
  Graph.t * mapping
(** Copy of the graph keeping vertices satisfying [vertex_pred]
    (default: all) and edges satisfying [edge_pred] (default: all)
    whose endpoints both survive. Vertex and edge properties are
    copied. [schema] substitutes a (restricted) schema whose vertex /
    edge type names must cover every surviving element — otherwise
    [Invalid_argument]. *)

val edge_prefix : Graph.t -> int -> Graph.t * mapping
(** Subgraph of the first [n] edges (by edge id, i.e. insertion order)
    and the vertices they touch. *)
