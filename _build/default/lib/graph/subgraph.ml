type mapping = { old_of_new_vertex : int array; new_of_old_vertex : int array }

let restrict ?(vertex_pred = fun _ -> true) ?(edge_pred = fun ~eid:_ ~src:_ ~dst:_ ~etype:_ -> true)
    ?schema g =
  let old_schema = Graph.schema g in
  let new_schema = match schema with Some s -> s | None -> old_schema in
  let n = Graph.n_vertices g in
  let new_of_old = Array.make n (-1) in
  let b = Builder.create new_schema in
  for v = 0 to n - 1 do
    if vertex_pred v then begin
      let tname = Graph.vertex_type_name g v in
      if Schema.has_vertex_type new_schema tname then begin
        let id = Builder.add_vertex b ~vtype:tname () in
        new_of_old.(v) <- id
      end
      else if schema = None then
        invalid_arg ("Subgraph.restrict: vertex type " ^ tname ^ " missing from schema")
      (* With an explicit restricted schema, vertices of dropped types
         are silently excluded — that is the point of restricting. *)
    end
  done;
  let old_of_new = Array.make (Builder.vertex_count b) 0 in
  Array.iteri (fun old_v new_v -> if new_v >= 0 then old_of_new.(new_v) <- old_v) new_of_old;
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype ->
      let s = new_of_old.(src) and d = new_of_old.(dst) in
      if s >= 0 && d >= 0 && edge_pred ~eid ~src ~dst ~etype then begin
        let ename = Schema.edge_type_name old_schema etype in
        if Schema.has_edge_type new_schema ename then begin
          let new_eid = Builder.add_edge b ~src:s ~dst:d ~etype:ename () in
          List.iter (fun (k, v) -> Builder.set_edge_prop b new_eid k v) (Graph.edge_props g eid)
        end
      end);
  Array.iteri
    (fun new_v old_v ->
      List.iter (fun (k, v) -> Builder.set_vertex_prop b new_v k v) (Graph.vertex_props g old_v))
    old_of_new;
  (Graph.freeze b, { old_of_new_vertex = old_of_new; new_of_old_vertex = new_of_old })

let edge_prefix g n =
  let touched = Array.make (Graph.n_vertices g) false in
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype:_ ->
      if eid < n then begin
        touched.(src) <- true;
        touched.(dst) <- true
      end);
  restrict ~vertex_pred:(fun v -> touched.(v))
    ~edge_pred:(fun ~eid ~src:_ ~dst:_ ~etype:_ -> eid < n)
    g
