type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | _ -> false

let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Str _ -> None

let is_truthy = function Null | Bool false -> false | _ -> true

let arith name fi ff a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> fi x y
  | (Int _ | Float _), (Int _ | Float _) -> begin
    match (to_float a, to_float b) with
    | Some x, Some y -> ff x y
    | _ -> assert false
  end
  | _ -> invalid_arg ("Value." ^ name ^ ": non-numeric operands")

let add a b =
  match (a, b) with
  | Str x, Str y -> Str (x ^ y)
  | _ -> arith "add" (fun x y -> Int (x + y)) (fun x y -> Float (x +. y)) a b

let sub = arith "sub" (fun x y -> Int (x - y)) (fun x y -> Float (x -. y))
let mul = arith "mul" (fun x y -> Int (x * y)) (fun x y -> Float (x *. y))

let div a b =
  arith "div"
    (fun x y -> if y = 0 then invalid_arg "Value.div: division by zero" else Int (x / y))
    (fun x y -> Float (x /. y))
    a b

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
