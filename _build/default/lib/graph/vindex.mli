(** On-demand hash indexes over vertex properties — the "scans from
    indexes" access path in the paper's description of Neo4j's
    optimizer (§V-A). An index for a property is built lazily on its
    first probe (one O(V) pass) and reused afterwards; the executor
    probes it for patterns anchored by an equality predicate, e.g.
    [MATCH (j:Job) WHERE j.name = 'job_17' ...]. *)

type t

val create : Graph.t -> t
(** No indexes are built yet. *)

val lookup : t -> prop:string -> Value.t -> int list
(** Vertex ids whose [prop] equals the value (any vertex type;
    callers filter by label). Builds the index on first use.
    Ascending id order. *)

val indexed_props : t -> string list
(** Properties indexed so far (sorted). *)

val build_count : t -> int
(** How many index builds happened (observability/tests). *)
