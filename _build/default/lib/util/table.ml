type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?(aligns = []) ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row in
  measure header;
  List.iter measure rows;
  let align_of i = match List.nth_opt aligns i with Some a -> a | None -> Left in
  let line ch =
    let parts = Array.to_list (Array.mapi (fun _ w -> String.make (w + 2) ch) widths) in
    "+" ^ String.concat "+" parts ^ "+"
  in
  let render_row row =
    let cells = List.mapi (fun i cell -> " " ^ pad (align_of i) widths.(i) cell ^ " ") row in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print ?aligns ~header rows = print_endline (render ?aligns ~header rows)

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_sci x = Printf.sprintf "%.1e" x
