lib/util/prng.mli:
