lib/util/int_vec.ml: Array Stdlib
