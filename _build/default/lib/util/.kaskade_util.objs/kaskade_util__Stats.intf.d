lib/util/stats.mli: Hashtbl
