lib/util/stats.ml: Array Hashtbl List Stdlib
