lib/util/heap.mli:
