lib/util/table.mli:
