lib/util/heap.ml: Array Stdlib
