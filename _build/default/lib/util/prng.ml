(* SplitMix64: fast, high-quality, trivially seedable. Reference:
   Steele, Lea, Flood, "Fast splittable pseudorandom number generators"
   (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 62 usable bits: keep results non-negative OCaml ints. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = (max_int / bound) * bound in
  let rec go () =
    let r = next_nonneg t in
    if r < max then r mod bound else go ()
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bounded-Pareto inverse CDF on [1, n+1), floored to ranks 1..n. This
   yields P(K = k) ~ k^-s, which is what the power-law degree
   generators need; the continuous approximation avoids both the O(n)
   CDF table and rejection loops. *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if n = 1 then 1
  else begin
    let nf = float_of_int n +. 1.0 in
    let u = Stdlib.max epsilon_float (float t 1.0) in
    let x =
      if abs_float (s -. 1.0) < 1e-9 then exp (u *. log nf)
      else begin
        let om_s = 1.0 -. s in
        let top = exp (om_s *. log nf) in
        exp (log (1.0 +. (u *. (top -. 1.0))) /. om_s)
      end
    in
    Stdlib.min n (Stdlib.max 1 (int_of_float x))
  end

let geometric t ~p =
  let p = if p <= 0.0 then 1e-12 else if p > 1.0 then 1.0 else p in
  if p >= 1.0 then 0
  else begin
    let u = Stdlib.max epsilon_float (float t 1.0) in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let split t = { state = next_int64 t }
