(** Descriptive statistics used by Kaskade's view-size estimator and by
    the degree-distribution experiments (paper §V-A, §VII-D, Fig. 8). *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val percentile : int array -> float -> int
(** [percentile xs p] is the [p]-th percentile (0 < p <= 100) using the
    nearest-rank method on a sorted copy of [xs]. Raises
    [Invalid_argument] on an empty array or out-of-range [p]. The
    paper's estimator uses the 50th/90th/95th/100th out-degree. *)

val percentiles : int array -> float list -> (float * int) list
(** Batch version of {!percentile}: sorts once. *)

val ccdf : int array -> (int * int) list
(** [ccdf degrees] is the complementary cumulative degree distribution:
    for each distinct value [d] (ascending), the number of samples
    strictly greater than [d] — the quantity plotted in Fig. 8. *)

val linear_fit : (float * float) list -> float * float * float
(** [linear_fit pts] is [(slope, intercept, r2)] of the least-squares
    line through [pts]. [r2] is the coefficient of determination
    (1 on a perfect fit, 0 when the fit explains nothing). *)

val power_law_fit : int array -> float * float
(** [power_law_fit degrees] fits [freq(deg > x) ~ C * x^alpha] by
    linear regression on the log-log CCDF (zero-degree entries are
    skipped); returns [(alpha, r2)]. The paper reports goodness of
    linear fit on log-log CCDF plots. *)

val histogram : int array -> (int, int) Hashtbl.t
(** Value -> multiplicity. *)
