(** Deterministic pseudo-random number generation.

    All dataset generators and property-based scaffolding in this
    repository draw from this seeded SplitMix64 generator so that every
    experiment is reproducible bit-for-bit from its seed. *)

type t
(** Mutable PRNG state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of SplitMix64. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples from a Zipf distribution with exponent [s]
    over ranks [1..n], by inverted-CDF rejection (Devroye). Used to
    produce power-law out-degrees. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success
    of a Bernoulli([p]) trial; [p] is clamped to (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val split : t -> t
(** Derive an independent generator (for parallel sub-streams). *)
