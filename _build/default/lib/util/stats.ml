let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let nearest_rank sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p <= 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of (0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  nearest_rank sorted p

let percentiles xs ps =
  if Array.length xs = 0 then invalid_arg "Stats.percentiles: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.map
    (fun p ->
      if p <= 0.0 || p > 100.0 then invalid_arg "Stats.percentiles: p out of (0, 100]";
      (p, nearest_rank sorted p))
    ps

let histogram xs =
  let h = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      match Hashtbl.find_opt h x with
      | Some c -> Hashtbl.replace h x (c + 1)
      | None -> Hashtbl.add h x 1)
    xs;
  h

let ccdf xs =
  let h = histogram xs in
  let distinct = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
  let distinct = List.sort compare distinct in
  let total = Array.length xs in
  (* Walking ascending values, [above] counts samples > current value. *)
  let _, rows =
    List.fold_left
      (fun (above, rows) d ->
        let count_d = Hashtbl.find h d in
        let above' = above - count_d in
        (above', (d, above') :: rows))
      (total, []) distinct
  in
  List.rev rows

let linear_fit pts =
  let n = float_of_int (List.length pts) in
  if n < 2.0 then (0.0, 0.0, 0.0)
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then (0.0, sy /. n, 0.0)
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      let ybar = sy /. n in
      let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.0)) 0.0 pts in
      let ss_res =
        List.fold_left
          (fun a (x, y) ->
            let fy = (slope *. x) +. intercept in
            a +. ((y -. fy) ** 2.0))
          0.0 pts
      in
      let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
      (slope, intercept, r2)
    end
  end

let power_law_fit degrees =
  let rows = ccdf degrees in
  let pts =
    List.filter_map
      (fun (d, above) ->
        if d > 0 && above > 0 then Some (log (float_of_int d), log (float_of_int above))
        else None)
      rows
  in
  let slope, _, r2 = linear_fit pts in
  (slope, r2)
