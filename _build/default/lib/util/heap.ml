type 'a t = { mutable data : (float * 'a) array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.data.(i) < fst t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && fst t.data.(l) < fst t.data.(!smallest) then smallest := l;
  if r < t.len && fst t.data.(r) < fst t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio v =
  if t.len = Array.length t.data then begin
    let cap = Stdlib.max 16 (2 * Array.length t.data) in
    let data = Array.make cap (prio, v) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- (prio, v);
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let peek t = if t.len = 0 then None else Some t.data.(0)
