(** Plain-text table rendering for the benchmark harness (paper-style
    rows for every reproduced table and figure). *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in a boxed ASCII table;
    columns default to [Left], numbers read better with [Right]. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit

val fmt_int : int -> string
(** Thousands separators: [fmt_int 1234567 = "1,234,567"]. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_sci : float -> string
(** Scientific notation with two significant decimals, e.g. ["3.1e+06"]. *)
