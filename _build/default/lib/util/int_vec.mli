(** Growable array of ints — the workhorse buffer for building CSR
    adjacency (amortized O(1) push, contiguous storage). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
(** Raises [Invalid_argument] when out of bounds. *)

val set : t -> int -> int -> unit
val clear : t -> unit
(** Resets length to 0 without shrinking capacity. *)

val truncate : t -> int -> unit
(** [truncate t n] drops elements beyond index [n-1] in O(1). Raises
    [Invalid_argument] if [n] exceeds the current length. *)

val to_array : t -> int array
(** Fresh array of exactly [length t] elements. *)

val iter : (int -> unit) -> t -> unit
val of_array : int array -> t
val sort_in_place : t -> unit
