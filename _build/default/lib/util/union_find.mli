(** Disjoint-set forest with path compression and union by rank.
    Backs the connected-components analysis of generated graphs. *)

type t

val create : int -> t
(** [create n] — singletons [0..n-1]. *)

val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets. *)

val component_sizes : t -> (int, int) Hashtbl.t
(** Root -> component size. *)
