(** Binary min-heap keyed by float priority, used by the
    branch-and-bound knapsack solver (best-first search) and by
    weighted traversals. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority value]. Lower priority pops first. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
