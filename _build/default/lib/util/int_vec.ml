type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (Stdlib.max 1 capacity) 0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i name = if i < 0 || i >= t.len then invalid_arg ("Int_vec." ^ name ^ ": index out of bounds")

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let clear t = t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Int_vec.truncate: bad length";
  t.len <- n

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

let sort_in_place t =
  let a = to_array t in
  Array.sort compare a;
  Array.blit a 0 t.data 0 t.len
