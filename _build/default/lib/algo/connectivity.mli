(** Connectivity helpers: weakly-connected components, and the
    source/sink classification used by the paper's source-to-sink
    connector (Table I). *)

val components : Kaskade_graph.Graph.t -> Kaskade_util.Union_find.t
(** Weakly-connected components (edges treated as undirected). *)

val n_components : Kaskade_graph.Graph.t -> int

val sources : Kaskade_graph.Graph.t -> int list
(** Vertices with no incoming edges. *)

val sinks : Kaskade_graph.Graph.t -> int list
(** Vertices with no outgoing edges. *)
