open Kaskade_graph

type dir = Out | In | Both

let iter_neighbors g v dir f =
  (match dir with
  | Out | Both -> Graph.iter_out g v (fun ~dst ~etype:_ ~eid -> f dst eid)
  | In -> ());
  match dir with
  | In | Both -> Graph.iter_in g v (fun ~src ~etype:_ ~eid -> f src eid)
  | Out -> ()

let bfs_levels g ~src ?(dir = Out) ?(max_hops = max_int) () =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let frontier = ref [ src ] in
  let hop = ref 0 in
  while !frontier <> [] && !hop < max_hops do
    incr hop;
    let next = ref [] in
    List.iter
      (fun v ->
        iter_neighbors g v dir (fun u _ ->
            if dist.(u) < 0 then begin
              dist.(u) <- !hop;
              next := u :: !next
            end))
      !frontier;
    frontier := !next
  done;
  dist

let reachable_within g ~src ~max_hops ?(dir = Out) () =
  let dist = bfs_levels g ~src ~dir ~max_hops () in
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if dist.(v) > 0 then out := v :: !out
  done;
  !out

let descendants g ~src ~max_hops = reachable_within g ~src ~max_hops ~dir:Out ()
let ancestors g ~src ~max_hops = reachable_within g ~src ~max_hops ~dir:In ()

let endpoints_in_range g ~src ~lo ~hi ?(dir = Out) () =
  let dist = bfs_levels g ~src ~dir ~max_hops:hi () in
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if dist.(v) >= lo && dist.(v) <= hi then out := (v, dist.(v)) :: !out
  done;
  !out

let max_timestamp_paths g ~src ~max_hops ~prop =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  let best = Array.make n min_int in
  dist.(src) <- 0;
  best.(src) <- 0;
  let frontier = ref [ src ] in
  let hop = ref 0 in
  while !frontier <> [] && !hop < max_hops do
    incr hop;
    let next = ref [] in
    List.iter
      (fun v ->
        Graph.iter_out g v (fun ~dst ~etype:_ ~eid ->
            if dist.(dst) < 0 then begin
              dist.(dst) <- !hop;
              let w =
                match Graph.eprop g eid prop with Some (Value.Int ts) -> ts | _ -> 0
              in
              best.(dst) <- Stdlib.max best.(v) w;
              next := dst :: !next
            end))
      !frontier;
    frontier := !next
  done;
  let out = ref [] in
  for v = n - 1 downto 0 do
    if dist.(v) > 0 then out := (v, best.(v)) :: !out
  done;
  !out
