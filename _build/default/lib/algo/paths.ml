open Kaskade_graph

let count_k_walks g ~k =
  let n = Graph.n_vertices g in
  (* walks.(v) = number of walks of the current length ending at v. *)
  let walks = Array.make n 1.0 in
  for _ = 1 to k do
    let next = Array.make n 0.0 in
    for v = 0 to n - 1 do
      if walks.(v) > 0.0 then
        Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ -> next.(dst) <- next.(dst) +. walks.(v))
    done;
    Array.blit next 0 walks 0 n
  done;
  Array.fold_left ( +. ) 0.0 walks

let count_k_walks_between g ~k ~src_type ~dst_type =
  let n = Graph.n_vertices g in
  let walks = Array.make n 0.0 in
  Array.iter (fun v -> walks.(v) <- 1.0) (Graph.vertices_of_type g src_type);
  for _ = 1 to k do
    let next = Array.make n 0.0 in
    for v = 0 to n - 1 do
      if walks.(v) > 0.0 then
        Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ -> next.(dst) <- next.(dst) +. walks.(v))
    done;
    Array.blit next 0 walks 0 n
  done;
  Array.fold_left (fun acc v -> acc +. walks.(v)) 0.0 (Graph.vertices_of_type g dst_type)

let count_2hop_pairs g ~src_type ~dst_type =
  let total = ref 0 in
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun u ->
      Hashtbl.reset seen;
      Graph.iter_out g u (fun ~dst:mid ~etype:_ ~eid:_ ->
          Graph.iter_out g mid (fun ~dst:w ~etype:_ ~eid:_ ->
              if Graph.vertex_type g w = dst_type && not (Hashtbl.mem seen w) then begin
                Hashtbl.add seen w ();
                incr total
              end)))
    (Graph.vertices_of_type g src_type);
  !total

exception Limit_reached

let count_simple_paths_bounded g ~k ~limit =
  let n = Graph.n_vertices g in
  let on_path = Array.make n false in
  let count = ref 0 in
  let rec dfs v remaining =
    if remaining = 0 then begin
      incr count;
      if !count >= limit then raise Limit_reached
    end
    else
      Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ ->
          if not on_path.(dst) then begin
            on_path.(dst) <- true;
            dfs dst (remaining - 1);
            on_path.(dst) <- false
          end)
  in
  (try
     for v = 0 to n - 1 do
       on_path.(v) <- true;
       dfs v k;
       on_path.(v) <- false
     done
   with Limit_reached -> ());
  !count
