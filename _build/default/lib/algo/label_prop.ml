open Kaskade_graph

let run g ~passes =
  let n = Graph.n_vertices g in
  let labels = Array.init n (fun v -> v) in
  let counts = Hashtbl.create 16 in
  for _ = 1 to passes do
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      Hashtbl.reset counts;
      let bump l =
        match Hashtbl.find_opt counts l with
        | Some c -> Hashtbl.replace counts l (c + 1)
        | None -> Hashtbl.add counts l 1
      in
      Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ -> bump labels.(dst));
      Graph.iter_in g v (fun ~src ~etype:_ ~eid:_ -> bump labels.(src));
      if Hashtbl.length counts = 0 then next.(v) <- labels.(v)
      else begin
        (* Most frequent label; ties towards the smaller label. *)
        let best_label = ref max_int and best_count = ref 0 in
        Hashtbl.iter
          (fun l c ->
            if c > !best_count || (c = !best_count && l < !best_label) then begin
              best_label := l;
              best_count := c
            end)
          counts;
        next.(v) <- !best_label
      end
    done;
    Array.blit next 0 labels 0 n
  done;
  labels

let community_sizes labels =
  let h = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      match Hashtbl.find_opt h l with
      | Some c -> Hashtbl.replace h l (c + 1)
      | None -> Hashtbl.add h l 1)
    labels;
  h

let largest_community g ~labels ?count_type () =
  let h = Hashtbl.create 64 in
  Array.iteri
    (fun v l ->
      let counted = match count_type with None -> true | Some ty -> Graph.vertex_type g v = ty in
      if counted then begin
        match Hashtbl.find_opt h l with
        | Some c -> Hashtbl.replace h l (c + 1)
        | None -> Hashtbl.add h l 1
      end)
    labels;
  let best_label = ref (-1) and best_count = ref (-1) in
  Hashtbl.iter
    (fun l c ->
      if c > !best_count || (c = !best_count && l < !best_label) then begin
        best_label := l;
        best_count := c
      end)
    h;
  let members = ref [] in
  Array.iteri (fun v l -> if l = !best_label then members := v :: !members) labels;
  (!best_label, List.rev !members)
