(** Degree-distribution reporting for the paper's Fig. 8 (log-log CCDF
    plots with best-fit power-law exponent). *)

type report = {
  scope : string;  (** "all" or a vertex-type name. *)
  n : int;
  max_degree : int;
  ccdf : (int * int) list;  (** (degree, count of vertices with larger degree) *)
  alpha : float;  (** Slope of the log-log CCDF linear fit. *)
  r2 : float;  (** Goodness of that fit; near 1 = power law. *)
}

val of_graph : Kaskade_graph.Graph.t -> report
(** Out-degree distribution over all vertices. *)

val of_type : Kaskade_graph.Graph.t -> int -> report
val pp : Format.formatter -> report -> unit
