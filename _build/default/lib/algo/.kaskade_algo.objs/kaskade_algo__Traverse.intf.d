lib/algo/traverse.mli: Kaskade_graph
