lib/algo/connectivity.ml: Graph Kaskade_graph Kaskade_util Union_find
