lib/algo/label_prop.mli: Hashtbl Kaskade_graph
