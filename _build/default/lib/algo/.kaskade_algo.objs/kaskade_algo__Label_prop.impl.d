lib/algo/label_prop.ml: Array Graph Hashtbl Kaskade_graph List
