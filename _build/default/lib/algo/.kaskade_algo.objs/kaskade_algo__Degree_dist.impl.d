lib/algo/degree_dist.ml: Array Format Graph Kaskade_graph Kaskade_util Schema Stats Stdlib
