lib/algo/traverse.ml: Array Graph Kaskade_graph List Stdlib Value
