lib/algo/paths.mli: Kaskade_graph
