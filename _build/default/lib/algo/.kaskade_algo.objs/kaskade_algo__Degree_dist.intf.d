lib/algo/degree_dist.mli: Format Kaskade_graph
