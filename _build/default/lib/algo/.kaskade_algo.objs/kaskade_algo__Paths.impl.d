lib/algo/paths.ml: Array Graph Hashtbl Kaskade_graph
