lib/algo/connectivity.mli: Kaskade_graph Kaskade_util
