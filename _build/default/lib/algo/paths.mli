(** Path counting — ground truth for the paper's view-size estimators
    (§V-A: "the number of edges in a k-hop connector over a graph G
    equals the number of k-length paths in G"). *)

val count_k_walks : Kaskade_graph.Graph.t -> k:int -> float
(** Exact number of directed k-edge walks (1^T A^k 1), computed by k
    sparse matrix-vector products in O(k (V + E)). For small k on
    sparse graphs this coincides closely with the simple-path count
    the paper estimates (walks revisiting a vertex require short
    cycles). Returned as float: counts overflow 63 bits on power-law
    graphs for moderate k. *)

val count_k_walks_between :
  Kaskade_graph.Graph.t -> k:int -> src_type:int -> dst_type:int -> float
(** k-edge walks starting at a vertex of [src_type] and ending at one
    of [dst_type] — the edge count of a typed k-hop connector with
    path multiplicity. *)

val count_2hop_pairs :
  Kaskade_graph.Graph.t -> src_type:int -> dst_type:int -> int
(** Number of *distinct* (u, w) pairs of the given types connected by
    a 2-hop path — the edge count of a deduplicated 2-hop connector.
    O(sum over mid vertices of in-deg * out-deg) time but deduplicated
    via a per-source hash set. *)

val count_simple_paths_bounded :
  Kaskade_graph.Graph.t -> k:int -> limit:int -> int
(** Exact simple (vertex-disjoint) directed k-path count by bounded
    DFS enumeration; stops and returns [limit] once [limit] paths are
    found. Exponential — use on small graphs (tests, ground truth). *)
