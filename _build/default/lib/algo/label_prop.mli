(** Synchronous label-propagation community detection — the stand-in
    for the APOC label-propagation UDF used by the paper's Q7/Q8. On a
    2-hop connector the paper runs "around half as many iterations"
    and obtains similar job groupings; {!run} exposes the pass count
    so the rewritten query can do exactly that. *)

val run : Kaskade_graph.Graph.t -> passes:int -> int array
(** [run g ~passes] returns a community label per vertex. Labels start
    as vertex ids; each pass every vertex adopts the most frequent
    label among its (undirected) neighbours, ties broken towards the
    smaller label; updates are synchronous, so the result is
    deterministic. *)

val community_sizes : int array -> (int, int) Hashtbl.t

val largest_community :
  Kaskade_graph.Graph.t -> labels:int array -> ?count_type:int -> unit -> int * int list
(** Paper Q8: the community label with the most member vertices
    (restricted to vertices of [count_type] when given, e.g. counting
    only Job vertices) and its member list. *)
