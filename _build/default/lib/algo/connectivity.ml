open Kaskade_graph
open Kaskade_util

let components g =
  let uf = Union_find.create (Graph.n_vertices g) in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype:_ -> Union_find.union uf src dst);
  uf

let n_components g = Union_find.count (components g)

let sources g =
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if Graph.in_degree g v = 0 then out := v :: !out
  done;
  !out

let sinks g =
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if Graph.out_degree g v = 0 then out := v :: !out
  done;
  !out
