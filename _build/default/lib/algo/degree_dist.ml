open Kaskade_graph
open Kaskade_util

type report = {
  scope : string;
  n : int;
  max_degree : int;
  ccdf : (int * int) list;
  alpha : float;
  r2 : float;
}

let of_degrees scope degrees =
  let alpha, r2 = Stats.power_law_fit degrees in
  {
    scope;
    n = Array.length degrees;
    max_degree = Array.fold_left Stdlib.max 0 degrees;
    ccdf = Stats.ccdf degrees;
    alpha;
    r2;
  }

let of_graph g = of_degrees "all" (Graph.all_out_degrees g)

let of_type g ty = of_degrees (Schema.vertex_type_name (Graph.schema g) ty) (Graph.out_degrees_of_type g ty)

let pp ppf r =
  Format.fprintf ppf "%s: n=%d max_deg=%d alpha=%.2f r2=%.3f" r.scope r.n r.max_degree r.alpha r.r2
