lib/gen/provenance_gen.mli: Kaskade_graph
