lib/gen/provenance_gen.ml: Array Builder Graph Kaskade_graph Kaskade_util Printf Prng Schema Stdlib Value
