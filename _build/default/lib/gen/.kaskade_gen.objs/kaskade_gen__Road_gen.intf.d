lib/gen/road_gen.mli: Kaskade_graph
