lib/gen/powerlaw_gen.mli: Kaskade_graph
