lib/gen/dblp_gen.mli: Kaskade_graph
