lib/gen/dblp_gen.ml: Array Builder Graph Hashtbl Kaskade_graph Kaskade_util Printf Prng Schema Stdlib Value
