(** Chung-Lu power-law homogeneous digraph standing in for
    soc-livejournal (paper Table III): single vertex type [V], single
    edge type [LINK], degree distribution following a power law —
    exactly the regime where the paper's Fig. 5 shows 2-hop
    connectors exceeding the raw graph size. *)

type config = {
  vertices : int;
  edges : int;  (** Target; actuals land within a few percent (self
      loops and duplicates are rejected). *)
  exponent : float;  (** Power-law exponent, typically 2.1-2.5. *)
  seed : int;
}

val default : config
val scaled : edges:int -> seed:int -> config
val schema : Kaskade_graph.Schema.t
val generate : config -> Kaskade_graph.Graph.t
