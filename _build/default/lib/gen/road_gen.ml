open Kaskade_util
open Kaskade_graph

type config = { width : int; height : int; keep_prob : float; seed : int }

let default = { width = 50; height = 50; keep_prob = 0.9; seed = 23 }

(* Each kept lattice edge becomes two directed edges; a full W*H grid
   has ~2*W*H undirected edges. *)
let scaled ~edges ~seed =
  let cells = Stdlib.max 16 (edges / 4) in
  let side = int_of_float (sqrt (float_of_int cells)) in
  { default with width = side; height = side; seed }

let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "ROAD", "V") ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let b = Builder.create schema in
  let id x y = (y * cfg.width) + x in
  let ids =
    Array.init (cfg.width * cfg.height) (fun i ->
        Builder.add_vertex b ~vtype:"V" ~props:[ ("name", Value.Str (Printf.sprintf "n_%d" i)) ] ())
  in
  let ts = ref 0 in
  let connect u v =
    ts := !ts + 1;
    let w = Value.Int (1 + Prng.int rng 10) in
    ignore (Builder.add_edge b ~src:ids.(u) ~dst:ids.(v) ~etype:"ROAD"
              ~props:[ ("timestamp", Value.Int !ts); ("length", w) ] ());
    ignore (Builder.add_edge b ~src:ids.(v) ~dst:ids.(u) ~etype:"ROAD"
              ~props:[ ("timestamp", Value.Int !ts); ("length", w) ] ())
  in
  for y = 0 to cfg.height - 1 do
    for x = 0 to cfg.width - 1 do
      if x + 1 < cfg.width && Prng.float rng 1.0 < cfg.keep_prob then connect (id x y) (id (x + 1) y);
      if y + 1 < cfg.height && Prng.float rng 1.0 < cfg.keep_prob then connect (id x y) (id x (y + 1))
    done
  done;
  Graph.freeze b
