(** Synthetic publications network standing in for GraphDBLP
    (paper Table III: 5.1M vertices — authors, articles, venues).

    Schema:
    - vertex types: [Author], [Pub], [Venue]
    - edge types: [(Author)-[:AUTHORED]->(Pub)],
      [(Pub)-[:HAS_AUTHOR]->(Author)], [(Pub)-[:PUBLISHED_IN]->(Venue)]

    [AUTHORED]/[HAS_AUTHOR] mirror each other so that
    author-pub-author 2-hop paths exist in the directed graph — the
    co-authorship connector the paper materializes. Author
    productivity is Zipf-skewed (power-law, Fig. 8). *)

type config = {
  authors : int;
  pubs : int;
  venues : int;
  max_authors_per_pub : int;
  zipf_exponent : float;
  seed : int;
}

val default : config
val scaled : edges:int -> seed:int -> config
val schema : Kaskade_graph.Schema.t
val generate : config -> Kaskade_graph.Graph.t

val summarized_types : string list
(** [\["Author"; "Pub"\]] — the paper's summarized dblp graph keeps
    authors and publications only. *)
