(** Synthetic data-lineage (provenance) graph, substituting for the
    proprietary Microsoft cluster graph of the paper (§I-A, Table III).

    Schema — the motivating heterogeneous network of Fig. 1/3:
    - vertex types: [Job], [File], [Task], [Machine], [User]
    - edge types:
      [(Job)-[:WRITES_TO]->(File)], [(File)-[:IS_READ_BY]->(Job)],
      [(Job)-[:HAS_TASK]->(Task)], [(Task)-[:RUNS_ON]->(Machine)],
      [(User)-[:SUBMITTED]->(Job)]

    Structural properties preserved from the paper: no job-job or
    file-file edges (the constraint Kaskade mines), power-law file
    fan-out (hot datasets read by many jobs, Fig. 8), and job
    properties ([CPU], [pipelineName]) consumed by the blast-radius
    query Q1. Every edge carries a [timestamp] (used by Q4). *)

type config = {
  jobs : int;
  files : int;
  machines : int;
  users : int;
  tasks_per_job : int;  (** Mean; actual counts vary by +-50%. *)
  writes_per_job : int;  (** Max writes; per-job counts are Zipf-skewed. *)
  reads_per_job : int;  (** Max reads; file popularity is Zipf-skewed. *)
  pipelines : int;  (** Distinct pipelineName values. *)
  zipf_exponent : float;
  seed : int;
}

val default : config
(** ~7k vertices / ~30k edges — quick tests and examples. *)

val scaled : edges:int -> seed:int -> config
(** Scale the default shape to approximately the requested edge
    count. *)

val schema : Kaskade_graph.Schema.t
val generate : config -> Kaskade_graph.Graph.t

val summarized_types : string list
(** [\["Job"; "File"\]] — the vertex types the paper's summarizer
    keeps for the query workload (§VII-B "prov summarized"). *)
