open Kaskade_util
open Kaskade_graph

type config = {
  jobs : int;
  files : int;
  machines : int;
  users : int;
  tasks_per_job : int;
  writes_per_job : int;
  reads_per_job : int;
  pipelines : int;
  zipf_exponent : float;
  seed : int;
}

let default =
  {
    jobs = 1_000;
    files = 2_000;
    machines = 50;
    users = 100;
    tasks_per_job = 2;
    writes_per_job = 4;
    reads_per_job = 6;
    pipelines = 20;
    zipf_exponent = 1.6;
    seed = 42;
  }

(* Edges per job in the default shape: tasks_per_job (HAS_TASK +
   RUNS_ON = 2*tasks) + ~writes/2 + ~reads/2 + 1 (SUBMITTED). *)
let scaled ~edges ~seed =
  let per_job =
    (2 * default.tasks_per_job)
    + (default.writes_per_job / 2)
    + (default.reads_per_job / 2)
    + 1
  in
  let jobs = Stdlib.max 10 (edges / per_job) in
  {
    default with
    jobs;
    files = 2 * jobs;
    machines = Stdlib.max 10 (jobs / 20);
    users = Stdlib.max 10 (jobs / 10);
    seed;
  }

let schema =
  Schema.define
    ~vertices:[ "Job"; "File"; "Task"; "Machine"; "User" ]
    ~edges:
      [ ("Job", "WRITES_TO", "File");
        ("File", "IS_READ_BY", "Job");
        ("Job", "HAS_TASK", "Task");
        ("Task", "RUNS_ON", "Machine");
        ("User", "SUBMITTED", "Job") ]

let summarized_types = [ "Job"; "File" ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let b = Builder.create schema in
  let job_ids =
    Array.init cfg.jobs (fun i ->
        Builder.add_vertex b ~vtype:"Job"
          ~props:
            [ ("name", Value.Str (Printf.sprintf "job_%d" i));
              ("CPU", Value.Float (1.0 +. Prng.float rng 500.0));
              ("pipelineName", Value.Str (Printf.sprintf "pipeline_%d" (Prng.int rng cfg.pipelines))) ]
          ())
  in
  let file_ids =
    Array.init cfg.files (fun i ->
        Builder.add_vertex b ~vtype:"File"
          ~props:
            [ ("path", Value.Str (Printf.sprintf "/data/file_%d" i));
              ("bytes", Value.Int (1 + Prng.int rng 1_000_000_000)) ]
          ())
  in
  let machine_ids = Array.init cfg.machines (fun i ->
      Builder.add_vertex b ~vtype:"Machine"
        ~props:[ ("host", Value.Str (Printf.sprintf "machine_%d" i)) ] ())
  in
  let user_ids = Array.init cfg.users (fun i ->
      Builder.add_vertex b ~vtype:"User"
        ~props:[ ("login", Value.Str (Printf.sprintf "user_%d" i)) ] ())
  in
  let ts = ref 0 in
  let next_ts () =
    ts := !ts + 1 + Prng.int rng 5;
    Value.Int !ts
  in
  (* A permutation of files establishes lineage order: job j writes
     "later" files and reads "earlier" ones, so job-file-job chains
     mostly flow forward as in a real lineage DAG. *)
  let file_order = Array.copy file_ids in
  Prng.shuffle rng file_order;
  let writer_assigned = Array.make cfg.files false in
  Array.iteri
    (fun j job ->
      (* Writes: Zipf-skewed count; prefer files in this job's slice so
         every file ends up written by some job. *)
      let n_writes = Prng.zipf rng ~n:cfg.writes_per_job ~s:cfg.zipf_exponent in
      let base = j * cfg.files / Stdlib.max 1 cfg.jobs in
      for w = 0 to n_writes - 1 do
        let slot = (base + w + Prng.int rng 3) mod cfg.files in
        let f = file_order.(slot) in
        ignore (Builder.add_edge b ~src:job ~dst:f ~etype:"WRITES_TO"
                  ~props:[ ("timestamp", next_ts ()) ] ());
        writer_assigned.(slot) <- true
      done;
      (* Reads: file chosen by Zipf popularity over the earlier slice,
         creating the hot files responsible for the power-law tail. *)
      let n_reads = Prng.zipf rng ~n:cfg.reads_per_job ~s:cfg.zipf_exponent in
      let upper = Stdlib.max 1 base in
      for _ = 1 to n_reads do
        let rank = Prng.zipf rng ~n:upper ~s:cfg.zipf_exponent in
        let f = file_order.(rank - 1) in
        ignore (Builder.add_edge b ~src:f ~dst:job ~etype:"IS_READ_BY"
                  ~props:[ ("timestamp", next_ts ()) ] ())
      done;
      (* Tasks and the machine they run on. *)
      let n_tasks = Stdlib.max 1 (Prng.int_in rng (cfg.tasks_per_job / 2) (cfg.tasks_per_job * 3 / 2)) in
      for k = 0 to n_tasks - 1 do
        let task =
          Builder.add_vertex b ~vtype:"Task"
            ~props:[ ("name", Value.Str (Printf.sprintf "task_%d_%d" j k)) ] ()
        in
        ignore (Builder.add_edge b ~src:job ~dst:task ~etype:"HAS_TASK"
                  ~props:[ ("timestamp", next_ts ()) ] ());
        ignore (Builder.add_edge b ~src:task ~dst:(Prng.choose rng machine_ids) ~etype:"RUNS_ON"
                  ~props:[ ("timestamp", next_ts ()) ] ())
      done;
      (* Submitting user. *)
      ignore (Builder.add_edge b ~src:(Prng.choose rng user_ids) ~dst:job ~etype:"SUBMITTED"
                ~props:[ ("timestamp", next_ts ()) ] ()))
    job_ids;
  (* Orphan files (never written) get a writer, matching the paper's
     "all files being created or consumed by some job". *)
  Array.iteri
    (fun slot assigned ->
      if not assigned then
        ignore (Builder.add_edge b ~src:(Prng.choose rng job_ids) ~dst:file_order.(slot)
                  ~etype:"WRITES_TO" ~props:[ ("timestamp", next_ts ()) ] ()))
    writer_assigned;
  Graph.freeze b
