open Kaskade_util
open Kaskade_graph

type config = { vertices : int; edges : int; exponent : float; seed : int }

let default = { vertices = 2_000; edges = 10_000; exponent = 2.2; seed = 11 }

let scaled ~edges ~seed = { default with vertices = Stdlib.max 10 (edges / 5); edges; seed }

let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "LINK", "V") ]

(* Chung-Lu: endpoint i drawn with probability proportional to
   w_i = (i+1)^(-1/(exponent-1)); sampling both endpoints from the
   weight distribution yields expected degrees proportional to w. We
   sample via the Zipf rank trick with s = 1/(exponent-1). *)
let generate cfg =
  let rng = Prng.create cfg.seed in
  let b = Builder.create schema in
  let ids =
    Array.init cfg.vertices (fun i ->
        Builder.add_vertex b ~vtype:"V" ~props:[ ("name", Value.Str (Printf.sprintf "v_%d" i)) ] ())
  in
  let s = 1.0 /. (cfg.exponent -. 1.0) in
  let seen = Hashtbl.create (2 * cfg.edges) in
  let ts = ref 0 in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 20 * cfg.edges in
  while !added < cfg.edges && !attempts < max_attempts do
    incr attempts;
    let u = Prng.zipf rng ~n:cfg.vertices ~s - 1 in
    let v = Prng.zipf rng ~n:cfg.vertices ~s - 1 in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      ts := !ts + 1;
      ignore (Builder.add_edge b ~src:ids.(u) ~dst:ids.(v) ~etype:"LINK"
                ~props:[ ("timestamp", Value.Int !ts) ] ());
      incr added
    end
  done;
  Graph.freeze b
