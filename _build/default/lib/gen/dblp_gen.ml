open Kaskade_util
open Kaskade_graph

type config = {
  authors : int;
  pubs : int;
  venues : int;
  max_authors_per_pub : int;
  zipf_exponent : float;
  seed : int;
}

let default =
  { authors = 2_000; pubs = 3_000; venues = 50; max_authors_per_pub = 6; zipf_exponent = 1.8; seed = 7 }

(* Each pub contributes ~avg_authors * 2 (AUTHORED + HAS_AUTHOR) + 1
   (PUBLISHED_IN) edges; avg Zipf(6, 1.8) is about 1.8. *)
let scaled ~edges ~seed =
  let per_pub = 5 in
  let pubs = Stdlib.max 10 (edges / per_pub) in
  { default with pubs; authors = Stdlib.max 10 (2 * pubs / 3); venues = Stdlib.max 5 (pubs / 200); seed }

let schema =
  Schema.define
    ~vertices:[ "Author"; "Pub"; "Venue" ]
    ~edges:
      [ ("Author", "AUTHORED", "Pub");
        ("Pub", "HAS_AUTHOR", "Author");
        ("Pub", "PUBLISHED_IN", "Venue") ]

let summarized_types = [ "Author"; "Pub" ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let b = Builder.create schema in
  let author_ids =
    Array.init cfg.authors (fun i ->
        Builder.add_vertex b ~vtype:"Author"
          ~props:[ ("name", Value.Str (Printf.sprintf "author_%d" i)) ] ())
  in
  let venue_ids =
    Array.init cfg.venues (fun i ->
        Builder.add_vertex b ~vtype:"Venue"
          ~props:[ ("name", Value.Str (Printf.sprintf "venue_%d" i)) ] ())
  in
  let ts = ref 0 in
  let next_ts () =
    ts := !ts + 1 + Prng.int rng 3;
    Value.Int !ts
  in
  for p = 0 to cfg.pubs - 1 do
    let pub =
      Builder.add_vertex b ~vtype:"Pub"
        ~props:
          [ ("title", Value.Str (Printf.sprintf "pub_%d" p));
            ("year", Value.Int (1990 + Prng.int rng 35)) ]
        ()
    in
    let n_authors = Prng.zipf rng ~n:cfg.max_authors_per_pub ~s:cfg.zipf_exponent in
    let chosen = Hashtbl.create 4 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < n_authors && !attempts < 10 * n_authors do
      incr attempts;
      (* Zipf-ranked author selection: a few prolific authors write a
         disproportionate share of papers. *)
      let rank = Prng.zipf rng ~n:cfg.authors ~s:cfg.zipf_exponent in
      Hashtbl.replace chosen author_ids.(rank - 1) ()
    done;
    Hashtbl.iter
      (fun a () ->
        ignore (Builder.add_edge b ~src:a ~dst:pub ~etype:"AUTHORED"
                  ~props:[ ("timestamp", next_ts ()) ] ());
        ignore (Builder.add_edge b ~src:pub ~dst:a ~etype:"HAS_AUTHOR"
                  ~props:[ ("timestamp", next_ts ()) ] ()))
      chosen;
    ignore (Builder.add_edge b ~src:pub ~dst:(Prng.choose rng venue_ids) ~etype:"PUBLISHED_IN"
              ~props:[ ("timestamp", next_ts ()) ] ())
  done;
  Graph.freeze b
