(** Perturbed 2-D lattice standing in for roadnet-usa (paper Table
    III): homogeneous, near-uniform degree (<= 4 out-neighbours), no
    power law, long shortest paths — the regime where the paper finds
    the median-degree estimator tracks connector size and path
    queries benefit from contraction. *)

type config = {
  width : int;
  height : int;
  keep_prob : float;  (** Probability each lattice edge exists. *)
  seed : int;
}

val default : config
val scaled : edges:int -> seed:int -> config
val schema : Kaskade_graph.Schema.t
val generate : config -> Kaskade_graph.Graph.t
