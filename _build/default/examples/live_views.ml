(* Keeping a materialized connector fresh while the base graph grows —
   the incremental-maintenance extension (DESIGN.md "beyond the
   paper"; the paper inherits the problem statement from Zhuge &
   Garcia-Molina, ICDE'98).

     dune exec examples/live_views.exe

   A stream of new read edges arrives; after each insertion the 2-hop
   job-to-job connector is updated incrementally and checked against a
   full rebuild. *)

open Kaskade_graph
open Kaskade_views

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Rebuild a base graph with one extra IS_READ_BY edge. *)
let with_edge g src dst =
  let schema = Graph.schema g in
  let b = Builder.create schema in
  for v = 0 to Graph.n_vertices g - 1 do
    ignore (Builder.add_vertex b ~vtype:(Graph.vertex_type_name g v) ~props:(Graph.vertex_props g v) ())
  done;
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype ->
      ignore
        (Builder.add_edge b ~src ~dst ~etype:(Schema.edge_type_name schema etype)
           ~props:(Graph.edge_props g eid) ()));
  ignore (Builder.add_edge b ~src ~dst ~etype:"IS_READ_BY" ());
  Graph.freeze b

let () =
  let raw =
    Kaskade_gen.Provenance_gen.(generate { default with jobs = 2_000; files = 4_000; seed = 77 })
  in
  let base =
    ref
      (Materialize.materialize raw
         (View.Summarizer (View.Vertex_inclusion Kaskade_gen.Provenance_gen.summarized_types)))
        .Materialize.graph
  in
  let view = ref (Materialize.k_hop_connector !base ~src_type:"Job" ~dst_type:"Job" ~k:2) in
  Printf.printf "base: %d vertices, %d edges; connector: %d edges\n"
    (Graph.n_vertices !base) (Graph.n_edges !base)
    (Graph.n_edges !view.Materialize.graph);

  let rng = Kaskade_util.Prng.create 123 in
  let files = Graph.vertices_of_type_name !base "File" in
  let jobs = Graph.vertices_of_type_name !base "Job" in
  let total_inc = ref 0.0 and total_rebuild = ref 0.0 in
  for i = 1 to 10 do
    let src = Kaskade_util.Prng.choose rng files in
    let dst = Kaskade_util.Prng.choose rng jobs in
    let delta = Maintain.delta_of_insert !base ~view:!view ~src ~dst in
    let incremental, t_inc = time (fun () -> Maintain.apply !base ~view:!view ~src ~dst) in
    let updated_base = with_edge !base src dst in
    let rebuilt, t_full =
      time (fun () -> Materialize.k_hop_connector updated_base ~src_type:"Job" ~dst_type:"Job" ~k:2)
    in
    let pairs g' =
      let out = ref [] in
      Graph.iter_edges g' (fun ~eid:_ ~src ~dst ~etype:_ ->
          let n v = match Graph.vprop g' v "name" with Some (Value.Str s) -> s | _ -> "?" in
          out := (n src, n dst) :: !out);
      List.sort_uniq compare !out
    in
    let ok = pairs incremental.Materialize.graph = pairs rebuilt.Materialize.graph in
    Printf.printf
      "insert #%d file->job: +%d connector edges | incremental %.4fs vs rebuild %.4fs | %s\n" i
      (List.length delta.Maintain.added) t_inc t_full
      (if ok then "consistent" else "MISMATCH");
    total_inc := !total_inc +. t_inc;
    total_rebuild := !total_rebuild +. t_full;
    base := updated_base;
    view := rebuilt
  done;
  Printf.printf "\n10 insertions: incremental %.3fs total vs rebuild %.3fs total (%.1fx)\n"
    !total_inc !total_rebuild
    (if !total_inc > 0.0 then !total_rebuild /. !total_inc else 0.0)
