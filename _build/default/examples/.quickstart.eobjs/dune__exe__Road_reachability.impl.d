examples/road_reachability.ml: Format Graph Kaskade Kaskade_algo Kaskade_exec Kaskade_gen Kaskade_graph Kaskade_query Kaskade_views List Printf String Value
