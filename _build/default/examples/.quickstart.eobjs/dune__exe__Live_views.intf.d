examples/live_views.mli:
