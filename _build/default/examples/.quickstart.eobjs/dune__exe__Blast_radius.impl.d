examples/blast_radius.ml: Format Graph Kaskade Kaskade_exec Kaskade_gen Kaskade_graph Kaskade_views List Printf Unix
