examples/blast_radius.mli:
