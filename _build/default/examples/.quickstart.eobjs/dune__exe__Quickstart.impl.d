examples/quickstart.ml: Array Builder Format Graph Kaskade Kaskade_exec Kaskade_graph Kaskade_query Kaskade_views List Option Printf Schema String Value
