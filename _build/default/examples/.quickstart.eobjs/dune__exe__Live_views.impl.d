examples/live_views.ml: Builder Graph Kaskade_gen Kaskade_graph Kaskade_util Kaskade_views List Maintain Materialize Printf Schema Unix Value View
