examples/coauthorship.mli:
