examples/road_reachability.mli:
