examples/quickstart.mli:
