(* One function per reproduced table/figure. Each prints the paper-
   shaped rows; EXPERIMENTS.md records the expected shapes. *)

open Kaskade_graph
open Kaskade_util
open Kaskade_views

(* Monotonic: bench durations and medians must not wobble with NTP
   steps. Wall time is only for human-facing timestamps (none here). *)
let now () = Mclock.now_s ()

let time_once f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

(* Median of [reps] timed runs (first run warms caches and is
   included; medians are robust to it). Queries that already take
   seconds are measured once — their variance is relatively small and
   the suite must stay minutes-long. *)
let time_median ?(reps = 3) f =
  let first = snd (time_once f) in
  if first > 2.0 then first
  else begin
    let times = first :: List.init (reps - 1) (fun _ -> snd (time_once f)) in
    let sorted = List.sort compare times in
    List.nth sorted (List.length sorted / 2)
  end

let header title =
  Printf.printf "\n=== %s ===\n%!" title

(* Benchmarks want the raising behaviour of the old facade API: any
   typed error here is a harness bug, not a condition to measure. *)
let qok = function Ok v -> v | Error e -> failwith (Kaskade.Error.to_string e)
let run_auto ks q = qok (Kaskade.query ks q)
let run_base ks q = fst (qok (Kaskade.query ~target:Kaskade.Base ks q))

(* ------------------------------------------------------------------ *)
(* Table III: datasets                                                 *)

let table3 () =
  header "Table III: networks used for evaluation";
  let rows =
    List.concat_map
      (fun (d : Datasets.dataset) ->
        let g = Lazy.force d.Datasets.graph in
        let base =
          [ d.Datasets.name; d.Datasets.kind; Table.fmt_int (Graph.n_vertices g);
            Table.fmt_int (Graph.n_edges g) ]
        in
        if d.Datasets.heterogeneous then begin
          let f = Datasets.filter_graph d in
          [ base;
            [ d.Datasets.name ^ " (summarized)"; d.Datasets.kind; Table.fmt_int (Graph.n_vertices f);
              Table.fmt_int (Graph.n_edges f) ] ]
        end
        else [ base ])
      Datasets.all
  in
  Table.print ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
    ~header:[ "Short Name"; "Type"; "|V|"; "|E|" ] rows

(* ------------------------------------------------------------------ *)
(* Table IV: query workload                                            *)

let table4 () =
  header "Table IV: query workload (parsed and classified)";
  let d = Datasets.prov_raw in
  let rows =
    List.map
      (fun (q : Queries.bench_query) ->
        (* Parse both variants to prove they are well-formed. *)
        let ok text =
          match text with
          | None -> "n/a"
          | Some src -> begin
            match Kaskade.parse src with _ -> "yes" | exception _ -> "PARSE ERROR"
          end
        in
        [ q.Queries.id;
          (match q.Queries.raw with
          | Some _ ->
            (match q.Queries.id with
            | "Q1" -> "Job Blast Radius"
            | "Q2" -> "Ancestors"
            | "Q3" -> "Descendants"
            | "Q4" -> "Path lengths"
            | "Q5" -> "Edge Count"
            | "Q6" -> "Vertex Count"
            | "Q7" -> "Community Detection"
            | _ -> "Largest Community")
          | None -> "-");
          q.Queries.operation; q.Queries.result_kind; ok q.Queries.raw; ok q.Queries.over_connector ])
      (Queries.workload d)
  in
  Table.print ~header:[ "Query"; "Name"; "Operation"; "Result"; "parses"; "rewrite parses" ] rows

(* ------------------------------------------------------------------ *)
(* Fig. 5: view size estimation                                        *)

let fig5 () =
  header "Fig. 5: 2-hop connector size — estimated vs actual (edge-prefix sweep)";
  List.iter
    (fun (d : Datasets.dataset) ->
      let g = Lazy.force d.Datasets.graph in
      let m = Graph.n_edges g in
      let prefixes = List.filter (fun n -> n <= m) [ 10_000; 30_000; 100_000; 300_000 ] in
      let prefixes = if prefixes = [] then [ m ] else prefixes @ [ m ] in
      let rows =
        List.map
          (fun n ->
            let sub, _ = Subgraph.edge_prefix g n in
            let stats = Gstats.compute sub in
            let actual = Kaskade_algo.Paths.count_k_walks sub ~k:2 in
            let est50 = Kaskade.Estimator.estimate_paths stats ~k:2 ~alpha:50.0 in
            let est95 = Kaskade.Estimator.estimate_paths stats ~k:2 ~alpha:95.0 in
            let er =
              Kaskade.Estimator.erdos_renyi ~n:(Graph.n_vertices sub) ~m:(Graph.n_edges sub) ~k:2
            in
            [ Table.fmt_int (Graph.n_edges sub); Table.fmt_sci est50; Table.fmt_sci est95;
              Table.fmt_sci actual; Table.fmt_sci er ])
          prefixes
      in
      Printf.printf "\n-- %s --\n" d.Datasets.name;
      Table.print
        ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
        ~header:[ "graph edges"; "est alpha=50"; "est alpha=95"; "actual 2-hop"; "Erdos-Renyi (Eq.1)" ]
        rows)
    Datasets.all

(* Ablation: estimator accuracy degrades with k, as the paper notes
   ("similar to cardinality estimation for joins, the larger the k,
   the less accurate our estimator"). *)
let fig5k () =
  header "Fig. 5 ablation: estimator accuracy vs k (prov)";
  let g = Datasets.filter_graph Datasets.prov_raw in
  let stats = Gstats.compute g in
  let rows =
    List.map
      (fun k ->
        let actual = Kaskade_algo.Paths.count_k_walks g ~k in
        let est95 = Kaskade.Estimator.estimate_paths stats ~k ~alpha:95.0 in
        let est50 = Kaskade.Estimator.estimate_paths stats ~k ~alpha:50.0 in
        let ratio = if actual > 0.0 then est95 /. actual else 0.0 in
        [ string_of_int k; Table.fmt_sci est50; Table.fmt_sci est95; Table.fmt_sci actual;
          Printf.sprintf "%.2f" ratio ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Table.print
    ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "k"; "est alpha=50"; "est alpha=95"; "actual k-walks"; "est95/actual" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 6: size reduction                                              *)

let fig6 () =
  header "Fig. 6: effective graph size — raw vs summarizer vs 2-hop connector";
  let rows =
    List.concat_map
      (fun (d : Datasets.dataset) ->
        let g = Lazy.force d.Datasets.graph in
        let f = Datasets.filter_graph d in
        let c = Datasets.connector_graph d in
        let row stage g' =
          [ d.Datasets.name; stage; Table.fmt_int (Graph.n_vertices g'); Table.fmt_int (Graph.n_edges g') ]
        in
        [ row "raw" g; row "filter" f; row "connector" c ])
      Datasets.heterogeneous
  in
  Table.print ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
    ~header:[ "dataset"; "stage"; "vertices"; "edges" ] rows

(* ------------------------------------------------------------------ *)
(* Fig. 7: query runtimes                                              *)

let run_query ctx src =
  match Kaskade_exec.Executor.run_string ctx src with
  | Kaskade_exec.Executor.Table t -> Kaskade_exec.Row.n_rows t
  | Kaskade_exec.Executor.Affected n -> n

let fig7_dataset (d : Datasets.dataset) =
  let base = Datasets.filter_graph d in
  let conn = Datasets.connector_graph d in
  let base_ctx = Kaskade_exec.Executor.create base in
  let conn_ctx = Kaskade_exec.Executor.create conn in
  let base_label = if d.Datasets.heterogeneous then "filter" else "raw" in
  let profiles = ref [] in
  let rows =
    List.filter_map
      (fun (q : Queries.bench_query) ->
        match (q.Queries.raw, q.Queries.over_connector) with
        | Some raw_src, Some conn_src ->
          Printf.printf "  %s...%!" q.Queries.id;
          let rows_raw = ref 0 and rows_conn = ref 0 in
          let t_raw = time_median (fun () -> rows_raw := run_query base_ctx raw_src) in
          let t_conn = time_median (fun () -> rows_conn := run_query conn_ctx conn_src) in
          (* One additional profiled run per side records where the
             time goes, operator by operator. *)
          let _, plan_raw =
            Kaskade_exec.Executor.run_explained ~profile:true base_ctx (Kaskade.parse raw_src)
          in
          let _, plan_conn =
            Kaskade_exec.Executor.run_explained ~profile:true conn_ctx (Kaskade.parse conn_src)
          in
          profiles := (q.Queries.id, plan_raw, plan_conn) :: !profiles;
          let speedup = if t_conn > 0.0 then t_raw /. t_conn else 0.0 in
          Printf.printf " %.2fs / %.2fs\n%!" t_raw t_conn;
          Some
            [ q.Queries.id; Printf.sprintf "%.4f" t_raw; Printf.sprintf "%.4f" t_conn;
              Printf.sprintf "%.1fx" speedup; Table.fmt_int !rows_raw; Table.fmt_int !rows_conn ]
        | _ -> None)
      (Queries.workload d)
  in
  Printf.printf "\n-- %s (%s vs connector) --\n" d.Datasets.name base_label;
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "query"; base_label ^ " (s)"; "connector (s)"; "speedup"; "rows(base)"; "rows(conn)" ]
    rows;
  List.iter
    (fun (id, plan_raw, plan_conn) ->
      Printf.printf "\n%s on %s:\n%s" id base_label (Kaskade_obs.Explain.render plan_raw);
      Printf.printf "%s on connector:\n%s" id (Kaskade_obs.Explain.render plan_conn))
    (List.rev !profiles)

let fig7 () =
  header "Fig. 7: total query runtimes, filter/raw vs 2-hop connector";
  List.iter fig7_dataset Datasets.all

(* ------------------------------------------------------------------ *)
(* Fig. 8: degree distributions                                        *)

let fig8 () =
  header "Fig. 8: out-degree distribution CCDF and power-law fit";
  let rows =
    List.map
      (fun (d : Datasets.dataset) ->
        let g = Lazy.force d.Datasets.graph in
        let r = Kaskade_algo.Degree_dist.of_graph g in
        let points =
          (* A few CCDF sample points (deg, count-above). *)
          let all = r.Kaskade_algo.Degree_dist.ccdf in
          let total = List.length all in
          List.filteri (fun i _ -> i = 0 || i = total / 2 || i = total - 1) all
          |> List.map (fun (deg, cnt) -> Printf.sprintf "(%d, %d)" deg cnt)
          |> String.concat " "
        in
        [ d.Datasets.name; Table.fmt_int r.Kaskade_algo.Degree_dist.n;
          string_of_int r.Kaskade_algo.Degree_dist.max_degree;
          Printf.sprintf "%.2f" r.Kaskade_algo.Degree_dist.alpha;
          Printf.sprintf "%.3f" r.Kaskade_algo.Degree_dist.r2; points ])
      Datasets.all
  in
  Table.print ~header:[ "dataset"; "n"; "max deg"; "ccdf slope"; "r2 (power-law fit)"; "ccdf samples" ] rows

(* ------------------------------------------------------------------ *)
(* Tables I & II: view catalog                                         *)

let catalog () =
  header "Tables I & II: connector and summarizer catalog (materialized on a small prov instance)";
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 400; files = 800; seed = 1 }) in
  let views =
    [ View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 });
      View.Connector (View.K_hop { src_type = "File"; dst_type = "File"; k = 2 });
      View.Connector (View.Same_vertex_type { vtype = "Job" });
      View.Connector (View.Same_edge_type { etype = "WRITES_TO" });
      View.Connector View.Source_to_sink;
      View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ]);
      View.Summarizer (View.Vertex_removal [ "Task"; "Machine" ]);
      View.Summarizer (View.Edge_inclusion [ "WRITES_TO"; "IS_READ_BY" ]);
      View.Summarizer (View.Edge_removal [ "SUBMITTED" ]);
      View.Summarizer
        (View.Vertex_aggregator
           { vtype = "Job"; group_prop = "pipelineName"; agg_prop = "CPU"; agg = View.Agg_sum });
      View.Summarizer (View.Subgraph_aggregator { agg_prop = "CPU"; agg = View.Agg_sum });
      View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "CPU"; agg = View.Agg_sum }) ]
  in
  let rows =
    List.map
      (fun v ->
        let m, dt = time_once (fun () -> Materialize.materialize g v) in
        [ View.name v; View.describe v; Table.fmt_int (Graph.n_vertices m.Materialize.graph);
          Table.fmt_int (Graph.n_edges m.Materialize.graph); Printf.sprintf "%.3f" dt ])
      views
  in
  Table.print ~header:[ "view"; "description"; "|V|"; "|E|"; "build (s)" ] rows

(* ------------------------------------------------------------------ *)
(* Enumeration ablation (§IV)                                          *)

let enum () =
  header "Enumeration ablation: constraint injection vs schema-only search (paper §IV)";
  let schema = Kaskade_gen.Provenance_gen.schema in
  let q1 = Kaskade.parse (Option.get (Queries.q1 Datasets.prov_raw).Queries.raw) in
  let constrained, t_c = time_once (fun () -> Kaskade.Enumerate.enumerate schema q1) in
  Printf.printf "constraint-based (Listing 1 over the 5-type prov schema):\n";
  Printf.printf "  candidates=%d inference_steps=%d time=%.4fs\n"
    (List.length constrained.Kaskade.Enumerate.candidates)
    constrained.Kaskade.Enumerate.inference_steps t_c;
  List.iter
    (fun (c : Kaskade.Enumerate.candidate) ->
      Printf.printf "    %-24s %s\n" (View.name c.Kaskade.Enumerate.view)
        (View.describe c.Kaskade.Enumerate.view))
    constrained.Kaskade.Enumerate.candidates;
  Printf.printf "\nschema-only (no query constraints), growing max K:\n";
  let rows =
    List.map
      (fun max_k ->
        let e, t = time_once (fun () -> Kaskade.Enumerate.enumerate_unconstrained schema ~max_k) in
        [ string_of_int max_k; string_of_int (List.length e.Kaskade.Enumerate.candidates);
          Table.fmt_int e.Kaskade.Enumerate.inference_steps; Printf.sprintf "%.4f" t ])
      [ 2; 4; 6; 8; 10; 12 ]
  in
  Table.print ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "max K"; "candidates"; "inference steps"; "time (s)" ] rows

(* ------------------------------------------------------------------ *)
(* View selection budget sweep (§V-B)                                  *)

let select () =
  header "View selection: knapsack budget sweep over the Q1-Q4 workload (paper §V-B)";
  let d = Datasets.prov_raw in
  let g = Datasets.filter_graph d in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  let queries =
    List.filter_map
      (fun (q : Queries.bench_query) -> Option.map Kaskade.parse q.Queries.raw)
      [ Queries.q1 d; Queries.q2 d; Queries.q3 d; Queries.q4 d ]
  in
  let m = Graph.n_edges g in
  let budgets = [ m / 100; m / 10; m; 10 * m; 100 * m ] in
  let rows =
    List.concat_map
      (fun budget ->
        List.map
          (fun solver ->
            let name =
              match solver with
              | Kaskade.Selection.Branch_and_bound -> "branch&bound"
              | Kaskade.Selection.Dp -> "dp"
              | Kaskade.Selection.Greedy -> "greedy"
            in
            let sel = Kaskade.Selection.select ~solver stats schema ~queries ~budget_edges:budget in
            [ Table.fmt_int budget; name;
              String.concat " " (List.map View.name sel.Kaskade.Selection.chosen);
              Table.fmt_int sel.Kaskade.Selection.total_weight;
              Printf.sprintf "%.4f" sel.Kaskade.Selection.total_value ])
          (if budget = m then
             [ Kaskade.Selection.Branch_and_bound; Kaskade.Selection.Greedy ]
           else [ Kaskade.Selection.Branch_and_bound ]))
      budgets
  in
  Table.print ~header:[ "budget (edges)"; "solver"; "chosen views"; "used"; "value" ] rows

(* ------------------------------------------------------------------ *)
(* End-to-end: the whole Kaskade loop on the blast-radius workload     *)

let e2e () =
  header "End-to-end: enumerate -> select -> materialize -> rewrite -> run (Q1/Q2 on prov)";
  let d = Datasets.prov_raw in
  let g = Datasets.filter_graph d in
  let ks = Kaskade.make g in
  let queries =
    List.filter_map
      (fun (q : Queries.bench_query) -> Option.map Kaskade.parse q.Queries.raw)
      [ Queries.q1 d; Queries.q2 d ]
  in
  let budget = 10 * Graph.n_edges g in
  let sel, t_select =
    time_once (fun () -> Kaskade.select_views ks ~queries ~budget_edges:budget)
  in
  Printf.printf "selection (%d candidates considered, %.3fs): %s\n"
    (List.length sel.Kaskade.Selection.reports) t_select
    (String.concat ", " (List.map View.name sel.Kaskade.Selection.chosen));
  let entries, t_mat = time_once (fun () -> Kaskade.materialize_selected ks sel) in
  List.iter
    (fun (e : Catalog.entry) ->
      Printf.printf "materialized %s: %d edges\n"
        (View.name e.Catalog.materialized.Materialize.view)
        e.Catalog.size_edges)
    entries;
  Printf.printf "materialization: %.3fs\n" t_mat;
  let plans = ref [] in
  let wall_times = ref [] in
  let rows = List.map
      (fun q ->
        let t_raw = time_median (fun () -> ignore (run_base ks q)) in
        let how = ref "raw" in
        let t_view =
          time_median (fun () ->
              let _, target = run_auto ks q in
              how := (match target with Kaskade.Raw -> "raw" | Kaskade.Via_view v -> v))
        in
        (* One profiled run records per-operator actual rows/timings. *)
        let _, report = Kaskade.profile ks q in
        plans := (!how, report.Kaskade.plan) :: !plans;
        let qtext = Kaskade_query.Pretty.to_string q in
        wall_times := (qtext, t_raw, t_view, !how) :: !wall_times;
        [ String.sub qtext 0 (Stdlib.min 48 (String.length qtext)) ^ "...";
          Printf.sprintf "%.4f" t_raw; Printf.sprintf "%.4f" t_view; !how;
          Printf.sprintf "%.1fx" (if t_view > 0.0 then t_raw /. t_view else 0.0) ])
      queries
  in
  (* Plan cache: a second facade over the same graph and selection
     plans every run from scratch; the warm instance (its cache primed
     by the timed runs above) answers repeats straight from the cache.
     Execution is identical either way, so the gap is pure planning —
     repair scan, per-view rewriting, cost comparison. *)
  let ks_cold = Kaskade.make ~config:{ Kaskade.Config.default with plan_cache = false } g in
  ignore (Kaskade.materialize_selected ks_cold sel);
  let q_pc = List.hd queries in
  ignore (run_auto ks q_pc);
  let t_pc_cold = time_median ~reps:11 (fun () -> ignore (run_auto ks_cold q_pc)) in
  let t_pc_warm = time_median ~reps:11 (fun () -> ignore (run_auto ks q_pc)) in
  let pc_speedup = if t_pc_warm > 0.0 then t_pc_cold /. t_pc_warm else 0.0 in
  Printf.printf "plan cache: cold %.5fs -> warm %.5fs per run (%.2fx)\n" t_pc_cold t_pc_warm
    pc_speedup;
  Table.print ~header:[ "query"; "raw (s)"; "kaskade (s)"; "answered via"; "speedup" ] rows;
  List.iter
    (fun (how, plan) ->
      Printf.printf "\nprofiled plan (via %s):\n%s" how (Kaskade_obs.Explain.render plan))
    (List.rev !plans);
  (* Process-wide metrics accumulated across the whole experiment —
     view hits/misses, expand steps, materialization sizes — plus the
     per-query wall times, so regressions are diffable run to run. *)
  let json =
    Kaskade_obs.Report.(
      to_string ~pretty:true
        (Obj
           [ ("metrics", Kaskade_obs.Metrics.to_json ());
             ( "plan_cache",
               Obj
                 [ ("cold_s", Float t_pc_cold); ("warm_s", Float t_pc_warm);
                   ("speedup", Float pc_speedup) ] );
             ( "query_wall_times",
               List
                 (List.rev_map
                    (fun (q, t_raw, t_view, how) ->
                      Obj
                        [ ("query", Str q); ("raw_s", Float t_raw); ("kaskade_s", Float t_view);
                          ("via", Str how) ])
                    !wall_times) ) ]))
  in
  let oc = open_out "bench_metrics.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nmetrics (also written to bench_metrics.json):\n%s\n" json

(* ------------------------------------------------------------------ *)
(* Microbench: segmented CSR, scratch BFS, parallel materialization    *)

(* [--smoke]: tiny sizes, few reps, and hard assertions instead of
   timings — run from CI to prove the segmented fast paths return the
   same rows as the seed's filter-scan semantics. *)
let smoke = ref false

(* The smoke graph is seeded, so its row counts are fixtures: a
   mismatch means the segmented CSR layout changed results. *)
let smoke_expected_typed_rows = 739

let microbench () =
  header "Microbench: type-segmented CSR + scratch BFS + parallel view materialization";
  let cfg =
    Kaskade_gen.Provenance_gen.(
      if !smoke then { default with jobs = 300; files = 600; seed = 42 }
      else { default with jobs = 4_000; files = 8_000; tasks_per_job = 6; machines = 100; users = 400; seed = 42 })
  in
  let g = Kaskade_gen.Provenance_gen.generate cfg in
  let schema = Graph.schema g in
  let n = Graph.n_vertices g in
  let reps = if !smoke then 3 else 9 in
  (* 1. Typed expansion: segmented slice walk vs the seed's filter-scan
     (iterate the whole out-list, test each edge's type) — the code
     path every typed MATCH step used before segmentation. The sweep
     runs over Job vertices, exactly the row set a
     [(j:Job)-[:WRITES_TO]->] step expands; Job adjacency mixes
     HAS_TASK and WRITES_TO runs, so the filter-scan pays for every
     skipped edge. *)
  let etid = Schema.edge_type_id schema "WRITES_TO" in
  let jobs = Graph.vertices_of_type_name g "Job" in
  let inner = if !smoke then 1 else 20 in
  let rows_seg = ref 0 and rows_scan = ref 0 in
  let t_seg =
    time_median ~reps (fun () ->
        rows_seg := 0;
        for _ = 1 to inner do
          Array.iter
            (fun v -> Graph.iter_out_etype g v ~etype:etid (fun ~dst:_ ~eid:_ -> incr rows_seg))
            jobs
        done)
  in
  let t_scan =
    time_median ~reps (fun () ->
        rows_scan := 0;
        for _ = 1 to inner do
          Array.iter
            (fun v ->
              Graph.iter_out g v (fun ~dst:_ ~etype ~eid:_ -> if etype = etid then incr rows_scan))
            jobs
        done)
  in
  if !rows_seg <> !rows_scan then begin
    Printf.eprintf "FAIL: typed expand rows differ: segmented=%d filter-scan=%d\n" !rows_seg !rows_scan;
    exit 1
  end;
  (* 1b. Same comparison in the in-direction, where the type runs are
     most selective: a Job's in-list mixes ~6 IS_READ_BY edges with
     one SUBMITTED edge, so the reverse step [(u:User)-[:SUBMITTED]->(j)]
     anchored at [j] skips almost the whole list. *)
  let sub_etid = Schema.edge_type_id schema "SUBMITTED" in
  let rows_in_seg = ref 0 and rows_in_scan = ref 0 in
  let t_in_seg =
    time_median ~reps (fun () ->
        rows_in_seg := 0;
        for _ = 1 to inner do
          Array.iter
            (fun v ->
              Graph.iter_in_etype g v ~etype:sub_etid (fun ~src:_ ~eid:_ -> incr rows_in_seg))
            jobs
        done)
  in
  let t_in_scan =
    time_median ~reps (fun () ->
        rows_in_scan := 0;
        for _ = 1 to inner do
          Array.iter
            (fun v ->
              Graph.iter_in g v (fun ~src:_ ~etype ~eid:_ ->
                  if etype = sub_etid then incr rows_in_scan))
            jobs
        done)
  in
  if !rows_in_seg <> !rows_in_scan then begin
    Printf.eprintf "FAIL: typed in-expand rows differ: segmented=%d filter-scan=%d\n" !rows_in_seg
      !rows_in_scan;
    exit 1
  end;
  if !smoke && !rows_seg <> smoke_expected_typed_rows then begin
    Printf.eprintf "FAIL: typed expand fixture mismatch: got %d, expected %d\n" !rows_seg
      smoke_expected_typed_rows;
    exit 1
  end;
  (* 2. Two-hop BFS, the executor's var-length expansion shape: the
     PR's epoch-stamped scratch set + pooled frontier vectors vs the
     seed's Hashtbl visited set + list frontiers. Sources sample every
     vertex type. *)
  let sources = List.init (Stdlib.min 64 n) (fun i -> i * (Stdlib.max 1 (n / 64))) in
  let reach_scratch = ref 0 and reach_ht = ref 0 in
  let t_bfs_scratch =
    time_median ~reps (fun () ->
        reach_scratch := 0;
        for _ = 1 to inner do
          List.iter
            (fun src ->
              Scratch.with_set ~n @@ fun visited ->
              Scratch.with_vec @@ fun vec_a ->
              Scratch.with_vec @@ fun vec_b ->
              Scratch.add visited src;
              Int_vec.push vec_a src;
              let cur = ref vec_a and next = ref vec_b in
              for _hop = 1 to 2 do
                Int_vec.clear !next;
                let nv = !next in
                Int_vec.iter
                  (fun v ->
                    Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ ->
                        if not (Scratch.mem visited dst) then begin
                          Scratch.add visited dst;
                          incr reach_scratch;
                          Int_vec.push nv dst
                        end))
                  !cur;
                let tmp = !cur in
                cur := !next;
                next := tmp
              done)
            sources
        done)
  in
  let t_bfs_ht =
    time_median ~reps (fun () ->
        reach_ht := 0;
        for _ = 1 to inner do
          List.iter
            (fun src ->
              let visited = Hashtbl.create 16 in
              Hashtbl.replace visited src ();
              let frontier = ref [ src ] in
              for _hop = 1 to 2 do
                let next = ref [] in
                List.iter
                  (fun v ->
                    Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ ->
                        if not (Hashtbl.mem visited dst) then begin
                          Hashtbl.replace visited dst ();
                          incr reach_ht;
                          next := dst :: !next
                        end))
                  !frontier;
                frontier := List.rev !next
              done)
            sources
        done)
  in
  if !reach_scratch <> !reach_ht then begin
    Printf.eprintf "FAIL: 2-hop BFS reach differs: scratch=%d hashtbl=%d\n" !reach_scratch !reach_ht;
    exit 1
  end;
  (* 3. Connector materialization across pool widths: timings plus the
     determinism contract — the frozen view serializes byte-identically
     at every width. *)
  let widths = [ 1; 2; 4 ] in
  let mat_times =
    List.map
      (fun w ->
        let pool = Pool.create ~domains:w () in
        let m = ref None in
        let t =
          time_median ~reps:(if !smoke then 2 else 3) (fun () ->
              m := Some (Materialize.k_hop_connector ~pool g ~src_type:"Job" ~dst_type:"Job" ~k:2))
        in
        let m = Option.get !m in
        (w, t, Gio.to_string m.Materialize.graph, Graph.n_edges m.Materialize.graph))
      widths
  in
  let _, _, bytes1, edges1 = List.hd mat_times in
  List.iter
    (fun (w, _, bytes, _) ->
      if bytes <> bytes1 then begin
        Printf.eprintf "FAIL: materialization at %d domains differs from sequential output\n" w;
        exit 1
      end)
    mat_times;
  if !smoke then begin
    (* Scaling smoke: a wider pool must never be slower. The morsel
       scheduler caps workers at the hardware parallelism, so on a
       single-core CI box the 4-domain pool takes the 1-worker path
       and the assertion reduces to noise tolerance — best-of-3
       timings, retried a few times before declaring a regression. *)
    let best pool =
      let best = ref infinity in
      for _ = 1 to 3 do
        let t =
          snd
            (time_once (fun () ->
                 ignore (Materialize.k_hop_connector ~pool g ~src_type:"Job" ~dst_type:"Job" ~k:2)))
        in
        if t < !best then best := t
      done;
      !best
    in
    let pool1 = Pool.create ~domains:1 () in
    let pool4 = Pool.create ~domains:4 () in
    let rec attempt tries =
      let t1 = best pool1 in
      let t4 = best pool4 in
      let speedup = if t4 > 0.0 then t1 /. t4 else 1.0 in
      if speedup >= 1.0 then
        Printf.printf "scaling smoke: connector @4 domains %.2fx vs @1 (%d effective worker(s))\n"
          speedup (Pool.effective_workers pool4)
      else if tries > 1 then attempt (tries - 1)
      else begin
        Printf.eprintf
          "FAIL: connector slower at 4 domains than 1: %.4fs vs %.4fs (speedup %.2fx < 1.0)\n" t4 t1
          speedup;
        exit 1
      end
    in
    attempt 5
  end;
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "kernel"; "time (s)"; "baseline (s)"; "speedup" ]
    ([ [ "typed expand out (WRITES_TO)"; Printf.sprintf "%.4f" t_seg; Printf.sprintf "%.4f" t_scan;
         Printf.sprintf "%.1fx" (if t_seg > 0.0 then t_scan /. t_seg else 0.0) ];
       [ "typed expand in (SUBMITTED)"; Printf.sprintf "%.4f" t_in_seg; Printf.sprintf "%.4f" t_in_scan;
         Printf.sprintf "%.1fx" (if t_in_seg > 0.0 then t_in_scan /. t_in_seg else 0.0) ];
       [ "2-hop BFS (64 sources)"; Printf.sprintf "%.4f" t_bfs_scratch; Printf.sprintf "%.4f" t_bfs_ht;
         Printf.sprintf "%.1fx" (if t_bfs_scratch > 0.0 then t_bfs_ht /. t_bfs_scratch else 0.0) ] ]
    @ List.map
        (fun (w, t, _, edges) ->
          let _, t1, _, _ = List.hd mat_times in
          [ Printf.sprintf "connector k=2 @%dd (%s edges)" w (Table.fmt_int edges);
            Printf.sprintf "%.4f" t; Printf.sprintf "%.4f" t1;
            Printf.sprintf "%.1fx" (if t > 0.0 then t1 /. t else 0.0) ])
        mat_times);
  Printf.printf "typed-expand rows=%d  bfs reach=%d  connector edges=%d  output identical across widths: yes\n"
    !rows_seg !reach_scratch edges1;
  if not !smoke then begin
    let open Kaskade_obs.Report in
    let json =
      Obj
        [ ("graph", Obj [ ("n", Int n); ("m", Int (Graph.n_edges g)) ]);
          ( "typed_expand_out",
            Obj
              [ ("segmented_s", Float t_seg); ("filter_scan_s", Float t_scan);
                ("rows", Int !rows_seg);
                ("speedup", Float (if t_seg > 0.0 then t_scan /. t_seg else 0.0)) ] );
          ( "typed_expand_in",
            Obj
              [ ("segmented_s", Float t_in_seg); ("filter_scan_s", Float t_in_scan);
                ("rows", Int !rows_in_seg);
                ("speedup", Float (if t_in_seg > 0.0 then t_in_scan /. t_in_seg else 0.0)) ] );
          ( "bfs_2hop",
            Obj
              [ ("scratch_s", Float t_bfs_scratch); ("hashtbl_s", Float t_bfs_ht);
                ("reach", Int !reach_scratch);
                ("speedup", Float (if t_bfs_scratch > 0.0 then t_bfs_ht /. t_bfs_scratch else 0.0)) ] );
          ( "connector_materialize",
            List
              (List.map
                 (fun (w, t, _, edges) ->
                   Obj [ ("domains", Int w); ("time_s", Float t); ("edges", Int edges) ])
                 mat_times) ) ]
    in
    let oc = open_out "bench_speed.json" in
    output_string oc (to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "baseline written to bench_speed.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Sharded CSR: partitioned storage + shard-parallel morsel scans      *)

(* Identity first, speed second: every run proves executor results are
   byte-identical at S ∈ {1,2,4} for both partition policies and that
   [Shard.typed_scan] reproduces the single-CSR row count and
   destination checksum, then measures typed-scan throughput 1 -> 4
   shards. [--smoke] keeps the fixture graph and turns the scaling
   measurement into a hard >= 1.0x assertion (best-of-3, retried). *)

let shard_workload =
  [ "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
    "MATCH (u:User)-[:SUBMITTED]->(j:Job) RETURN u, j";
    "MATCH (s:Job)-[r*1..4]->(desc:Job) RETURN s, desc";
    "MATCH (s:Job)<-[r*1..4]-(anc:Job) RETURN s, anc" ]

(* Full result bytes, not the 20-row [Row.pp] preview: column header
   plus every row's rendered values in result order. *)
let shard_result_bytes g = function
  | Kaskade_exec.Executor.Affected n -> Printf.sprintf "affected %d" n
  | Kaskade_exec.Executor.Table t ->
    let buf = Buffer.create 4096 in
    Array.iter
      (fun c ->
        Buffer.add_string buf c;
        Buffer.add_char buf '\t')
      t.Kaskade_exec.Row.cols;
    Buffer.add_char buf '\n';
    List.iter
      (fun row ->
        Array.iter
          (fun v ->
            Buffer.add_string buf (Kaskade_exec.Row.rval_to_string g v);
            Buffer.add_char buf '\t')
          row;
        Buffer.add_char buf '\n')
      t.Kaskade_exec.Row.rows;
    Buffer.contents buf

let shard () =
  header "Sharded CSR: partitioned storage + shard-parallel morsel scans";
  let cfg =
    Kaskade_gen.Provenance_gen.(
      if !smoke then { default with jobs = 300; files = 600; seed = 42 }
      else
        { default with jobs = 4_000; files = 8_000; tasks_per_job = 6; machines = 100;
          users = 400; seed = 42 })
  in
  let g = Kaskade_gen.Provenance_gen.generate cfg in
  let schema = Graph.schema g in
  let etid = Schema.edge_type_id schema "WRITES_TO" in
  (* Single-CSR reference for the scan kernel: row count plus the
     order-insensitive destination-vid checksum [typed_scan] folds. *)
  let ref_rows = ref 0 and ref_sum = ref 0 in
  Array.iter
    (fun v ->
      Graph.iter_out_etype g v ~etype:etid (fun ~dst ~eid:_ ->
          Stdlib.incr ref_rows;
          ref_sum := (!ref_sum + dst) land max_int))
    (Graph.vertices_of_type g (Schema.edge_src schema etid));
  if !smoke && !ref_rows <> smoke_expected_typed_rows then begin
    Printf.eprintf "FAIL: shard smoke fixture mismatch: got %d rows, expected %d\n" !ref_rows
      smoke_expected_typed_rows;
    exit 1
  end;
  (* 1. Executor byte-identity: the same workload, the same bytes, at
     every shard count and under both partition policies. *)
  let baseline =
    let ctx = Kaskade_exec.Executor.create g in
    List.map (fun q -> shard_result_bytes g (Kaskade_exec.Executor.run_string ctx q)) shard_workload
  in
  List.iter
    (fun policy ->
      List.iter
        (fun s ->
          let ctx = Kaskade_exec.Executor.create ~shard_policy:policy ~shards:s g in
          List.iter2
            (fun q expected ->
              let got = shard_result_bytes g (Kaskade_exec.Executor.run_string ctx q) in
              if got <> expected then begin
                Printf.eprintf "FAIL: results differ at shards=%d policy=%s for %s\n" s
                  (Shard.policy_name policy) q;
                exit 1
              end)
            shard_workload baseline)
        [ 2; 4 ])
    [ Shard.Hash; Shard.Type_range ];
  Printf.printf "executor identity: %d queries byte-identical at S in {1,2,4} x {hash, type_range}\n"
    (List.length shard_workload);
  (* 2. Scan-kernel identity: rows and checksum invariant across shard
     counts, policies and pool widths. *)
  let pool1 = Pool.create ~domains:1 () in
  let pool4 = Pool.create ~domains:4 () in
  let shards_of policy s = Shard.of_graph ~policy ~shards:s g in
  List.iter
    (fun policy ->
      List.iter
        (fun s ->
          let sh = shards_of policy s in
          List.iter
            (fun pool ->
              let rows, sum = Shard.typed_scan ~pool sh ~etype:etid in
              if rows <> !ref_rows || sum <> !ref_sum then begin
                Printf.eprintf
                  "FAIL: typed_scan mismatch at shards=%d policy=%s: rows=%d/%d checksum=%d/%d\n" s
                  (Shard.policy_name policy) rows !ref_rows sum !ref_sum;
                exit 1
              end)
            [ pool1; pool4 ])
        [ 1; 2; 4 ])
    [ Shard.Hash; Shard.Type_range ];
  Printf.printf "typed_scan identity: rows=%d checksum invariant at S in {1,2,4} x policies x pools\n"
    !ref_rows;
  (* 3. Scaling: sequential single-shard scan vs shard x morsel fan-out
     at S = 4. Type_range is the deployment policy for typed scans
     (few cut edges), so it is the one measured; Hash already proved
     identity above. *)
  let sh1 = shards_of Shard.Type_range 1 in
  let sh4 = shards_of Shard.Type_range 4 in
  (* The fixture scan is ~2us; a small batch leaves the smoke
     assertion at the mercy of timer granularity, so batch deep
     enough that each sample is comfortably in the milliseconds. *)
  let inner = if !smoke then 400 else 200 in
  let timed sh pool =
    (* The fixture scan is microseconds; batch it so best-of-3 measures
       work, not timer granularity. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t =
        snd
          (time_once (fun () ->
               for _ = 1 to inner do
                 ignore (Shard.typed_scan ~pool sh ~etype:etid)
               done))
      in
      if t < !best then best := t
    done;
    !best /. float_of_int inner
  in
  let t1 = ref (timed sh1 pool1) and t4 = ref (timed sh4 pool4) in
  if !smoke then begin
    (* On a one-core box the 4-domain pool caps to one worker and the
       assertion reduces to "sharding adds no overhead". Measuring the
       two configs as separate blocks lets machine-wide drift (a busy
       1-core VM) bias whichever side ran during the quiet moment, so
       the smoke takes ALTERNATING samples — drift then hits both
       sides equally and best-of-N compares like with like. *)
    let batch sh pool =
      snd
        (time_once (fun () ->
             for _ = 1 to inner do
               ignore (Shard.typed_scan ~pool sh ~etype:etid)
             done))
    in
    ignore (batch sh1 pool1);
    ignore (batch sh4 pool4);
    (* Bests accumulate ACROSS retries: the min estimator converges on
       each config's true quiet-machine time, so a sustained
       interference window costs another attempt, never a spurious
       failure verdict. *)
    let b1 = ref infinity and b4 = ref infinity in
    (* With workers to spare, sharding must genuinely scale: >= 1.0x,
       no excuses. With one effective worker both configs run the same
       sequential loop and the claim degenerates to "sharding adds no
       overhead" — parity between two equal times, where a strict
       >= 1.0 on the noise is a coin flip, so the floor leaves a small
       noise margin. It still fails the real regressions this kernel
       has had (branchy cut-edge resolve: 0.88x; dependent-load
       resolution chain: 0.73x). *)
    let workers = Pool.effective_workers pool4 in
    let floor_x = if workers > 1 then 1.0 else 0.95 in
    let rec attempt tries =
      for _ = 1 to 5 do
        let s1 = batch sh1 pool1 in
        let s4 = batch sh4 pool4 in
        if s1 < !b1 then b1 := s1;
        if s4 < !b4 then b4 := s4
      done;
      let m1 = !b1 /. float_of_int inner and m4 = !b4 /. float_of_int inner in
      let speedup = if m4 > 0.0 then m1 /. m4 else 1.0 in
      if speedup >= floor_x then begin
        t1 := m1;
        t4 := m4;
        Printf.printf "scaling smoke: typed_scan @4 shards %.2fx vs @1 (%d effective worker(s))\n"
          speedup workers
      end
      else if tries > 1 then attempt (tries - 1)
      else begin
        Printf.eprintf
          "FAIL: typed_scan slower at 4 shards than 1: %.6fs vs %.6fs (speedup %.2fx < %.2fx)\n"
          m4 m1 speedup floor_x;
        exit 1
      end
    in
    attempt 8
  end;
  (* 4. Memory accounting: per-shard structures must stay near-balanced
     so peak per-process memory in a distributed load is ~ total/S. *)
  let mem_rows =
    List.map
      (fun s ->
        let sh = shards_of Shard.Type_range s in
        let per = List.init s (fun i -> Shard.shard_memory_words sh i) in
        let total = Shard.memory_words sh in
        let biggest = List.fold_left Stdlib.max 0 per in
        (s, total, biggest, Shard.cut_edges sh))
      [ 1; 2; 4 ]
  in
  let _, total1, _, _ = List.hd mem_rows in
  List.iter
    (fun (s, total, biggest, _) ->
      (* Shard-linear: the largest shard holds ~1/S of the words (2x
         slack for exchange arrays and small-type remainders). *)
      if s > 1 && biggest * s > 2 * total then begin
        Printf.eprintf "FAIL: shard memory imbalance at S=%d: max shard %d words of %d total\n" s
          biggest total;
        exit 1
      end;
      ignore total1)
    mem_rows;
  Table.print
    ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "shards"; "scan (s)"; "speedup"; "max shard words"; "cut edges" ]
    (List.map
       (fun (s, _, biggest, cut) ->
         let t = if s = 1 then !t1 else if s = 4 then !t4 else timed (shards_of Shard.Type_range s) pool4 in
         [ string_of_int s; Printf.sprintf "%.6f" t;
           Printf.sprintf "%.2fx" (if t > 0.0 then !t1 /. t else 0.0);
           Table.fmt_int biggest; Table.fmt_int cut ])
       mem_rows);
  Format.printf "%a@." Shard.pp_summary sh4;
  if not !smoke then begin
    (* Merge a "sharded_scan" section into the committed microbench
       baseline without disturbing its other sections. *)
    let open Kaskade_obs.Report in
    let existing =
      match
        let ic = open_in "bench_speed.json" in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        parse s
      with
      | Ok (Obj kvs) -> List.filter (fun (k, _) -> k <> "sharded_scan") kvs
      | Ok _ | Error _ -> []
      | exception Sys_error _ -> []
    in
    let section =
      Obj
        [ ("graph", Obj [ ("n", Int (Graph.n_vertices g)); ("m", Int (Graph.n_edges g)) ]);
          ("etype", Str "WRITES_TO");
          ("rows", Int !ref_rows);
          ( "scans",
            List
              (List.map
                 (fun (s, total, biggest, cut) ->
                   let t =
                     if s = 1 then !t1
                     else if s = 4 then !t4
                     else timed (shards_of Shard.Type_range s) pool4
                   in
                   Obj
                     [ ("shards", Int s); ("time_s", Float t);
                       ("speedup", Float (if t > 0.0 then !t1 /. t else 0.0));
                       ("memory_words", Int total); ("max_shard_words", Int biggest);
                       ("cut_edges", Int cut) ])
                 mem_rows) ) ]
    in
    let oc = open_out "bench_speed.json" in
    output_string oc (to_string ~pretty:true (Obj (existing @ [ ("sharded_scan", section) ])));
    output_char oc '\n';
    close_out oc;
    Printf.printf "sharded_scan section merged into bench_speed.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Maintenance: incremental refresh vs full rebuild                    *)

(* The live-update extension's headline claim: absorbing a small batch
   of edge updates into a materialized view via [Maintain.refresh] is
   far cheaper than re-materializing. Every measured refresh is also
   checked against the rebuild — result-identical for connectors (the
   incremental path may order appended vertices differently),
   byte-identical for summarizers — so the sweep doubles as a
   correctness harness; any mismatch exits non-zero, in --smoke and
   full runs alike. *)

let canonical_view (m : Materialize.materialized) =
  let vg = m.Materialize.graph in
  let o_of_n = Array.make (Graph.n_vertices vg) (-1) in
  Array.iteri (fun old_v nv -> if nv >= 0 then o_of_n.(nv) <- old_v) m.Materialize.new_of_old;
  let edges = ref [] in
  Graph.iter_edges vg (fun ~eid:_ ~src ~dst ~etype ->
      edges := (o_of_n.(src), o_of_n.(dst), etype) :: !edges);
  ( List.sort compare
      (Array.to_list (Array.mapi (fun old_v nv -> (old_v, nv >= 0)) m.Materialize.new_of_old)),
    List.sort compare !edges )

let maintenance () =
  header "Maintenance: incremental view refresh vs full rebuild across update batch sizes";
  (* Each view kind runs on the dataset where its maintenance problem
     is representative: connectors on the heterogeneous provenance
     graph (the paper's motivating workload), ego aggregates on the
     sparse road network, where a k-hop neighbourhood is a local
     object (on dense graphs the affected region approaches the whole
     graph and incrementality degenerates by construction). *)
  let prov =
    let raw =
      Kaskade_gen.Provenance_gen.(
        generate
          (if !smoke then { default with jobs = 400; files = 800; seed = 5 }
           else { default with jobs = 40_000; files = 80_000; seed = 5 }))
    in
    (Materialize.materialize raw
       (View.Summarizer (View.Vertex_inclusion Kaskade_gen.Provenance_gen.summarized_types)))
      .Materialize.graph
  in
  let road =
    Kaskade_gen.Road_gen.(generate (scaled ~edges:(if !smoke then 2_000 else 150_000) ~seed:5))
  in
  let scenarios =
    [ ( "connector k=2 (prov)",
        prov,
        View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }),
        `Canonical );
      ( "ego count(name) k=2 (road)",
        road,
        View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "name"; agg = View.Agg_count }),
        `Bytes ) ]
  in
  List.iter
    (fun (label, g, _, _) ->
      Printf.printf "%s base: %d vertices, %d edges\n%!" label (Graph.n_vertices g)
        (Graph.n_edges g))
    scenarios;
  let batches = if !smoke then [ 1; 16; 64 ] else [ 1; 4; 16; 64; 256 ] in
  (* Refreshes are ms-scale; rebuilds are 100x that. Every rep (on
     both sides alike) allocates a whole view graph, so the heap is
     collected between reps — outside the timed window — to keep one
     rep's garbage from billing major-GC slices to the next; the cheap
     side gets more reps for a stable median. *)
  let reps = if !smoke then 2 else 3 in
  let reps_delta = if !smoke then 2 else 7 in
  let time_median_gc ~reps f =
    let times = List.init reps (fun _ -> Gc.full_major (); snd (time_once f)) in
    let sorted = List.sort compare times in
    List.nth sorted (List.length sorted / 2)
  in
  let results = ref [] in
  let rows =
    List.concat_map
      (fun (label, g, view, compare_kind) ->
        let m = Materialize.materialize g view in
        List.map
          (fun batch ->
            let ops0 =
              Kaskade_gen.Mutate.random_ops ~inserts:((batch + 1) / 2) ~deletes:(batch / 2)
                ~seed:(1000 + batch) g
            in
            let o = Graph.Overlay.create g in
            let ops = Graph.Overlay.apply o ops0 in
            let base_after = Graph.Overlay.graph o in
            let refreshed = ref None in
            let t_delta =
              time_median_gc ~reps:reps_delta (fun () ->
                  refreshed := Some (Maintain.refresh base_after ~view:m ~ops))
            in
            let refreshed, strategy = Option.get !refreshed in
            let rebuilt = ref None in
            let t_rebuild =
              time_median_gc ~reps (fun () ->
                  rebuilt := Some (Materialize.materialize base_after view))
            in
            let rebuilt = Option.get !rebuilt in
            let same =
              match compare_kind with
              | `Canonical -> canonical_view refreshed = canonical_view rebuilt
              | `Bytes ->
                Gio.to_string refreshed.Materialize.graph = Gio.to_string rebuilt.Materialize.graph
                && refreshed.Materialize.new_of_old = rebuilt.Materialize.new_of_old
            in
            if not same then begin
              Printf.eprintf "FAIL: %s refresh diverged from rebuild at batch=%d (%s)\n" label
                batch
                (Maintain.describe_strategy strategy);
              exit 1
            end;
            if not (Maintain.incremental strategy) then begin
              Printf.eprintf "FAIL: %s fell back to a rebuild at batch=%d (%s)\n" label batch
                (Maintain.describe_strategy strategy);
              exit 1
            end;
            let speedup = if t_delta > 0.0 then t_rebuild /. t_delta else 0.0 in
            results := (label, batch, List.length ops, t_delta, t_rebuild, speedup) :: !results;
            [ label; string_of_int batch; Maintain.describe_strategy strategy;
              Printf.sprintf "%.5f" t_delta; Printf.sprintf "%.5f" t_rebuild;
              Printf.sprintf "%.1fx" speedup ])
          batches)
      scenarios
  in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "view"; "batch"; "strategy"; "delta (s)"; "rebuild (s)"; "speedup" ]
    rows;
  print_endline "every refresh checked against its rebuild: identical";
  if not !smoke then begin
    List.iter
      (fun (label, batch, _, _, _, speedup) ->
        if batch <= 64 && speedup < 10.0 then
          Printf.printf "WARN: %s at batch=%d only %.1fx faster than rebuild (target >= 10x)\n"
            label batch speedup)
      (List.rev !results);
    let open Kaskade_obs.Report in
    let json =
      Obj
        [ ( "maintenance",
            List
              (List.rev_map
                 (fun (label, batch, effective, t_delta, t_rebuild, speedup) ->
                   Obj
                     [ ("view", Str label); ("batch", Int batch); ("effective_ops", Int effective);
                       ("delta_s", Float t_delta); ("rebuild_s", Float t_rebuild);
                       ("speedup", Float speedup) ])
                 !results) ) ]
    in
    let oc = open_out "bench_metrics.json" in
    output_string oc (to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    print_endline "sweep written to bench_metrics.json"
  end

(* ------------------------------------------------------------------ *)
(* Regress: fresh run vs committed baseline                            *)

(* A fixed (scale-independent, seeded) workload run end-to-end through
   the facade, compared against the committed [bench_baseline.json].
   The deterministic fields — which view answered each query and how
   many rows came back — must match {e exactly}: they only change when
   planning/execution behavior changes. Timings are machine-specific,
   so only the raw-vs-view speedup {e ratio} is checked, with a
   generous tolerance band (3x), making the check meaningful on slow
   CI machines without going flaky. Full mode re-times and rewrites
   the baseline; [--smoke] compares and exits non-zero on regression. *)

let regress_workload =
  [ "MATCH (s:Job)-[r*1..4]->(desc:Job) RETURN s, desc";
    "MATCH (s:Job)<-[r*1..4]-(anc:Job) RETURN s, anc";
    "SELECT s, n, MAX(r) FROM (MATCH (s:Job)-[r*1..4]->(n) RETURN s, n, r) GROUP BY s, n" ]

let regress_result_rows = function
  | Kaskade_exec.Executor.Table t -> Kaskade_exec.Row.n_rows t
  | Kaskade_exec.Executor.Affected n -> n

let regress () =
  header "Regress: view routing, row counts and speedups vs bench_baseline.json";
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 400; files = 800; seed = 9 }) in
  let ks = Kaskade.make g in
  let queries = List.map Kaskade.parse regress_workload in
  let sel = Kaskade.select_views ks ~queries ~budget_edges:(10 * Graph.n_edges g) in
  ignore (Kaskade.materialize_selected ks sel);
  let reps = if !smoke then 3 else 5 in
  let entries =
    List.map2
      (fun src q ->
        let rows_raw = ref 0 and rows_view = ref 0 and via = ref "raw" in
        let t_raw =
          time_median ~reps (fun () -> rows_raw := regress_result_rows (run_base ks q))
        in
        let t_view =
          time_median ~reps (fun () ->
              let r, how = run_auto ks q in
              rows_view := regress_result_rows r;
              via := (match how with Kaskade.Raw -> "raw" | Kaskade.Via_view v -> v))
        in
        let speedup = if t_view > 0.0 then t_raw /. t_view else 0.0 in
        (src, !via, !rows_raw, !rows_view, t_raw, t_view, speedup))
      regress_workload queries
  in
  Table.print
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "query"; "via"; "rows"; "raw (s)"; "kaskade (s)"; "speedup" ]
    (List.map
       (fun (src, via, _, rows, t_raw, t_view, speedup) ->
         [ String.sub src 0 (Stdlib.min 40 (String.length src)) ^ "..."; via;
           Table.fmt_int rows; Printf.sprintf "%.5f" t_raw; Printf.sprintf "%.5f" t_view;
           Printf.sprintf "%.1fx" speedup ])
       entries);
  List.iter
    (fun (src, _, rows_raw, rows_view, _, _, _) ->
      if rows_raw <> rows_view then begin
        Printf.eprintf "FAIL: view-routed rows differ from raw rows for %s (%d vs %d)\n" src
          rows_view rows_raw;
        exit 1
      end)
    entries;
  print_endline (Kaskade_obs.Qlog.summary ());
  let baseline_path = "bench_baseline.json" in
  if not !smoke then begin
    let open Kaskade_obs.Report in
    let json =
      Obj
        [ ( "entries",
            List
              (List.map
                 (fun (src, via, _, rows, t_raw, t_view, speedup) ->
                   Obj
                     [ ("query", Str src); ("via", Str via); ("rows", Int rows);
                       ("raw_s", Float t_raw); ("kaskade_s", Float t_view);
                       ("speedup", Float speedup) ])
                 entries) ) ]
    in
    let oc = open_out baseline_path in
    output_string oc (to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "baseline written to %s\n" baseline_path
  end
  else begin
    let module R = Kaskade_obs.Report in
    let contents =
      match open_in_bin baseline_path with
      | ic ->
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      | exception Sys_error msg ->
        Printf.eprintf "FAIL: cannot read %s (%s); run `bench regress` without --smoke first\n"
          baseline_path msg;
        exit 1
    in
    let baseline =
      match R.parse contents with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "FAIL: %s does not parse: %s\n" baseline_path e;
        exit 1
    in
    let base_entries =
      match R.member "entries" baseline with
      | Some (R.List l) -> l
      | _ ->
        Printf.eprintf "FAIL: %s has no \"entries\" list\n" baseline_path;
        exit 1
    in
    let str k j = match R.member k j with Some (R.Str s) -> s | _ -> "" in
    let num k j =
      match R.member k j with
      | Some (R.Float f) -> f
      | Some (R.Int i) -> float_of_int i
      | _ -> nan
    in
    let failures = ref 0 in
    let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.eprintf "FAIL: %s\n" s) fmt in
    List.iter
      (fun (src, via, _, rows, _, _, speedup) ->
        match List.find_opt (fun b -> String.equal (str "query" b) src) base_entries with
        | None -> fail "query missing from baseline: %s" src
        | Some b ->
          if not (String.equal (str "via" b) via) then
            fail "%s: routed via %s, baseline says %s" src via (str "via" b);
          let base_rows = int_of_float (num "rows" b) in
          if base_rows <> rows then fail "%s: %d rows, baseline says %d" src rows base_rows;
          let base_speedup = num "speedup" b in
          if Float.is_nan base_speedup then fail "%s: baseline speedup unreadable" src
          else if speedup < base_speedup /. 3.0 then
            fail "%s: speedup %.2fx fell below tolerance (baseline %.2fx / 3)" src speedup
              base_speedup)
      entries;
    if !failures > 0 then begin
      Printf.eprintf "regress: %d check(s) failed against %s\n" !failures baseline_path;
      exit 1
    end;
    Printf.printf "regress: %d queries match baseline (routing + rows exact, speedup within 3x)\n"
      (List.length entries)
  end

(* ------------------------------------------------------------------ *)
(* Faults: degradation drill under injected failures                   *)

(* Forced refresh failures must open the circuit breaker and degrade
   queries to {e correct} base-graph answers (checked against a
   view-free twin of the same snapshot); a forced deadline or injected
   executor timeout must surface as a typed [Budget_exhausted], never
   a crash. [--smoke] only shrinks the graph — the assertions are
   always hard, so this doubles as the CI robustness gate. *)
let faults () =
  header "Faults: refresh circuit breaker + query deadlines under injected failures";
  let module M = Kaskade_obs.Metrics in
  let module Executor = Kaskade_exec.Executor in
  let module Row = Kaskade_exec.Row in
  let authors = if !smoke then 60 else 300 in
  let g =
    Kaskade_gen.Dblp_gen.(
      generate { default with authors; pubs = 2 * authors; venues = 8; seed = 11 })
  in
  let threshold = 3 in
  (* cooldown longer than the drill: the breaker must stay open *)
  let ks = Kaskade.make
      ~config:
        { Kaskade.Config.default with breaker_threshold = threshold; breaker_cooldown_s = 3600.0 }
      g in
  let q = Kaskade.parse "MATCH (a:Author)-[r*2..2]->(b:Author) RETURN a, b" in
  ignore
    (Kaskade.materialize ks
       (View.Connector (View.K_hop { src_type = "Author"; dst_type = "Author"; k = 2 })));
  (* dirty the view so every query wants a repair first *)
  let gs = Kaskade.graph ks in
  let a = Graph.vertices_of_type_name gs "Author" in
  let p = Graph.vertices_of_type_name gs "Pub" in
  Kaskade.Update.insert_edge ks ~src:a.(0) ~dst:p.(0) ~etype:"AUTHORED" ();
  (* ground truth: a view-free twin over the identical snapshot (all
     comparisons are base-graph vs base-graph, so vertex ids agree) *)
  let twin = Kaskade.make (Kaskade.graph ks) in
  let rows_of = function
    | Executor.Table t -> List.sort compare (List.map Array.to_list t.Row.rows)
    | Executor.Affected n -> [ [ Row.Prim (Value.Int n) ] ]
  in
  let expected = rows_of (fst (run_auto twin q)) in
  let m_failures = M.counter "kaskade.refresh_failures" in
  let m_open = M.counter "kaskade.breaker_open" in
  let m_fallback = M.counter "kaskade.fallback_runs" in
  let m_timeouts = M.counter "kaskade.query_timeouts" in
  let base = List.map M.counter_value [ m_failures; m_open; m_fallback; m_timeouts ] in
  Budget.Faults.(with_faults [ fault "maintain.refresh" Fail ]) (fun () ->
      for i = 1 to threshold + 1 do
        let r, how = run_auto ks q in
        (match how with
        | Kaskade.Raw -> ()
        | Kaskade.Via_view v ->
          Printf.eprintf "FAIL: query %d answered via stale view %s\n" i v;
          exit 1);
        if rows_of r <> expected then begin
          Printf.eprintf "FAIL: degraded query %d diverged from view-free execution\n" i;
          exit 1
        end;
        let breaker =
          match Kaskade.breaker_states ks with
          | [ (_, br) ] -> Breaker.describe br
          | _ -> "closed (pristine)"
        in
        Printf.printf "query %d: answered on base graph, rows correct, breaker %s\n" i breaker
      done);
  (match Kaskade.breaker_states ks with
  | [ (name, br) ] when Breaker.state br = Breaker.Open ->
    Printf.printf "breaker for %s opened after %d consecutive failures -> view quarantined\n"
      name (Breaker.failures br)
  | _ ->
    Printf.eprintf "FAIL: breaker did not open after %d refresh failures\n" threshold;
    exit 1);
  (* deadlines: a typed value, never a crash or an escaped exception *)
  (match Kaskade.query ~budget:(Budget.create ~deadline_s:0.0 ()) ks q with
  | Error (Kaskade.Error.Budget_exhausted _ as e) ->
    Printf.printf "0s deadline -> typed error: %s\n" (Kaskade.Error.to_string e)
  | Ok _ ->
    Printf.eprintf "FAIL: 0s deadline did not exhaust\n";
    exit 1
  | Error e ->
    Printf.eprintf "FAIL: 0s deadline misclassified: %s\n" (Kaskade.Error.to_string e);
    exit 1);
  Budget.Faults.with_spec "executor.run=timeout" (fun () ->
      match Kaskade.query ks q with
      | Error (Kaskade.Error.Budget_exhausted _) ->
        print_endline "injected executor timeout -> typed error"
      | _ ->
        Printf.eprintf "FAIL: injected executor timeout not surfaced as Budget_exhausted\n";
        exit 1);
  let deltas =
    List.map2 (fun c b -> M.counter_value c - b) [ m_failures; m_open; m_fallback; m_timeouts ]
      base
  in
  (match deltas with
  | [ failures; opened; fallback; timeouts ] ->
    Printf.printf
      "metrics: +%d refresh_failures, +%d breaker_open, +%d fallback_runs, +%d query_timeouts\n"
      failures opened fallback timeouts;
    (* threshold failures; one distinct opening; a fallback for the
       opening run, the quarantined one, and the executor-timeout run
       (it plans around the quarantined view before the fault fires);
       two governed timeouts *)
    if deltas <> [ threshold; 1; 3; 2 ] then begin
      Printf.eprintf "FAIL: unexpected metric deltas\n";
      exit 1
    end
  | _ -> assert false);
  print_endline "degradation drill passed: correct answers throughout, no crash"

(* ------------------------------------------------------------------ *)
(* Serving layer: concurrent sessions over the line protocol.          *)
(* Drill: 4 readers pinned to the opening snapshot replay a fixed      *)
(* query while 1 writer streams batches; every read must be            *)
(* byte-identical (same checksum) to a serial execution of the same    *)
(* query on the same snapshot, sheds must be typed and counted, and    *)
(* the server must still answer afterwards.                            *)

(* Scratch data directories for the durability drills live under the
   system temp dir; best-effort recursive removal. *)
let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let serve_exp () =
  header "Serve: MVCC sessions + single writer + admission control over a Unix socket";
  let cfg =
    Kaskade_gen.Provenance_gen.(
      if !smoke then { default with jobs = 300; files = 600; seed = 42 }
      else { default with jobs = 2_000; files = 4_000; seed = 42 })
  in
  let g = Kaskade_gen.Provenance_gen.generate cfg in
  let ks = Kaskade.make g in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kaskade-bench-%d.sock" (Unix.getpid ()))
  in
  let max_sessions = 6 in
  (* Tight sampler + a zero-tolerance stale-view threshold so the
     health drill below can force ok -> degraded -> ok within the
     run (stale views never escalate past degraded by design). *)
  let server =
    Kaskade_serve.Server.create ~max_sessions ~max_inflight:4 ~max_queue:8
      ~sample_every_s:0.05 ~timeseries_capacity:8192
      ~thresholds:{ Kaskade_obs.Health.default_thresholds with Kaskade_obs.Health.max_stale_views = 0 }
      ~socket ks
  in
  let server_th = Thread.create (fun () -> Kaskade_serve.Server.run server) () in
  let qtext = "MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f" in
  (* Serial reference: same query, same snapshot, same executor
     configuration a session uses — the byte-identity baseline. *)
  let reference =
    let ctx =
      Kaskade_exec.Executor.create ~mode:Kaskade_exec.Executor.Distinct_endpoints ~planner:true g
    in
    Kaskade_serve.Wire.checksum
      (Kaskade_serve.Wire.render_result g
         (Kaskade_exec.Executor.run ctx (Kaskade.parse qtext)))
  in
  let field kvs k =
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> Printf.eprintf "FAIL: serve response missing %s\n" k; exit 1
  in
  let expect_ok lines =
    let kvs = Kaskade_serve.Client.status lines in
    if field kvs "_status" <> "ok" then begin
      Printf.eprintf "FAIL: serve request rejected: %s\n" (List.nth lines (List.length lines - 1));
      exit 1
    end;
    kvs
  in
  (* Health baseline: a freshly started, unloaded server reports ok. *)
  let c0 = Kaskade_serve.Client.connect socket in
  let h0 = expect_ok (Kaskade_serve.Client.request c0 "HEALTH") in
  if field h0 "status" <> "ok" then begin
    Printf.eprintf "FAIL: fresh server health %s (reasons %s)\n" (field h0 "status")
      (field h0 "reasons");
    exit 1
  end;
  Kaskade_serve.Client.close c0;
  let readers = 4 in
  let reads_per_reader = if !smoke then 25 else 200 in
  let writer_batches = if !smoke then 60 else 1_000 in
  let torn = Atomic.make 0 and reads_done = Atomic.make 0 in
  (* All readers pin before the writer starts, so each replay must see
     the opening snapshot for its whole lifetime. *)
  let clients =
    List.init readers (fun _ ->
        let c = Kaskade_serve.Client.connect socket in
        let kvs = expect_ok (Kaskade_serve.Client.request c "OPEN") in
        (c, int_of_string (field kvs "version")))
  in
  let v0 = snd (List.hd clients) in
  let reader (c, v_open) =
    for _ = 1 to reads_per_reader do
      let kvs = expect_ok (Kaskade_serve.Client.request c ("Q " ^ qtext)) in
      if field kvs "checksum" <> reference || int_of_string (field kvs "version") <> v_open
      then Atomic.incr torn;
      Atomic.incr reads_done
    done
  in
  let writer () =
    let c = Kaskade_serve.Client.connect socket in
    for _ = 1 to writer_batches do
      ignore (expect_ok (Kaskade_serve.Client.request c "UPDATE insert-vertex:File;insert-vertex:Job"))
    done;
    Kaskade_serve.Client.close c
  in
  let t0 = now () in
  let threads = Thread.create writer () :: List.map (fun cl -> Thread.create reader cl) clients in
  List.iter Thread.join threads;
  let elapsed = now () -. t0 in
  if Atomic.get torn > 0 then begin
    Printf.eprintf "FAIL: %d torn reads (checksum or version drifted off the pinned snapshot)\n"
      (Atomic.get torn);
    exit 1
  end;
  (* Admission: the session cap is global, so opens beyond it must be
     shed with the typed overloaded error and counted. *)
  let extras = List.init max_sessions (fun _ -> Kaskade_serve.Client.connect socket) in
  let sheds =
    List.fold_left
      (fun n c ->
        let kvs = Kaskade_serve.Client.status (Kaskade_serve.Client.request c "OPEN") in
        if field kvs "_status" = "err" then begin
          if field kvs "label" <> "overloaded" then begin
            Printf.eprintf "FAIL: shed open not typed overloaded: label=%s\n" (field kvs "label");
            exit 1
          end;
          n + 1
        end
        else n)
      0 extras
  in
  if sheds = 0 then begin
    Printf.eprintf "FAIL: opening %d extra sessions above the %d cap shed nothing\n"
      (List.length extras) max_sessions;
    exit 1
  end;
  (* The server survived the storm: STATS still answers, counts the
     sheds, and shows the writer's batches landed. *)
  let probe = Kaskade_serve.Client.connect socket in
  let stats = expect_ok (Kaskade_serve.Client.request probe "STATS") in
  let shed_counted = int_of_string (field stats "shed") in
  let version_now = int_of_string (field stats "version") in
  if shed_counted < sheds then begin
    Printf.eprintf "FAIL: shed_requests counted %d < %d observed\n" shed_counted sheds;
    exit 1
  end;
  if version_now < v0 + (2 * writer_batches) then begin
    Printf.eprintf "FAIL: version %d after %d writer batches (pinned at %d)\n" version_now
      writer_batches v0;
    exit 1
  end;
  ignore (expect_ok (Kaskade_serve.Client.request probe "PING"));
  (* Health drill: force degraded with stale-view pressure (views
     materialized, then an update through the wire), back to ok after
     an in-process refresh — with the shed storm above and the stale
     window both visible in the server's time-series ring. *)
  let string_contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  let wait_status want =
    let deadline = now () +. 5.0 in
    let rec go () =
      let kvs = expect_ok (Kaskade_serve.Client.request probe "HEALTH") in
      if field kvs "status" = want || now () > deadline then kvs
      else begin
        Thread.delay 0.02;
        go ()
      end
    in
    go ()
  in
  let sel = Kaskade.select_views ks ~queries:[ Kaskade.parse qtext ] ~budget_edges:(Graph.n_edges g) in
  if Kaskade.materialize_selected ks sel = [] then begin
    Printf.eprintf "FAIL: health drill materialized no views (vacuous stale pressure)\n";
    exit 1
  end;
  ignore (expect_ok (Kaskade_serve.Client.request probe "UPDATE insert-vertex:File"));
  let kvs = wait_status "degraded" in
  if field kvs "status" <> "degraded" then begin
    Printf.eprintf "FAIL: stale views did not degrade health (status %s, reasons %s)\n"
      (field kvs "status") (field kvs "reasons");
    exit 1
  end;
  if not (string_contains (field kvs "reasons") "stale_views") then begin
    Printf.eprintf "FAIL: degraded reasons missing stale_views: %s\n" (field kvs "reasons");
    exit 1
  end;
  (* Hold the degraded state across a few sampler ticks so the ring
     records the stale window, not just the HEALTH responses. *)
  Thread.delay 0.2;
  ignore (Kaskade.Update.refresh_views ks);
  let kvs = wait_status "ok" in
  if field kvs "status" <> "ok" then begin
    Printf.eprintf "FAIL: health did not recover after refresh (status %s, reasons %s)\n"
      (field kvs "status") (field kvs "reasons");
    exit 1
  end;
  let ts = Kaskade_serve.Server.timeseries server in
  let ring_deadline = now () +. 5.0 in
  let rec latest_recovered () =
    let ok =
      match Kaskade_obs.Timeseries.latest ts with
      | Some p -> Kaskade_obs.Timeseries.gauge_level p "kaskade.stale_views" = Some 0.0
      | None -> false
    in
    if ok || now () > ring_deadline then ok
    else begin
      Thread.delay 0.02;
      latest_recovered ()
    end
  in
  let recovered = latest_recovered () in
  let pts = Kaskade_obs.Timeseries.points ts in
  let shed_captured =
    List.exists
      (fun p -> Kaskade_obs.Timeseries.counter_delta p "kaskade.shed_requests" > 0)
      pts
  in
  let stale_captured =
    List.exists
      (fun p ->
        match Kaskade_obs.Timeseries.gauge_level p "kaskade.stale_views" with
        | Some v -> v > 0.0
        | None -> false)
      pts
  in
  if not (shed_captured && stale_captured && recovered) then begin
    Printf.eprintf
      "FAIL: time-series ring missed the transition (shed %b, stale window %b, recovered %b)\n"
      shed_captured stale_captured recovered;
    exit 1
  end;
  Printf.printf
    "health drill passed: ok -> degraded (stale views) -> ok after refresh; \
     ring captured shed storm + stale window across %d points\n"
    (List.length pts);
  ignore (expect_ok (Kaskade_serve.Client.request probe "SHUTDOWN"));
  Kaskade_serve.Client.close probe;
  List.iter (fun (c, _) -> Kaskade_serve.Client.close c) clients;
  List.iter Kaskade_serve.Client.close extras;
  Thread.join server_th;
  Printf.printf
    "%d reads across %d pinned sessions + %d writer batches in %.2fs (%.0f req/s): \
     0 torn reads, %d sheds typed+counted, server live throughout\n"
    (Atomic.get reads_done) readers writer_batches elapsed
    (float_of_int (Atomic.get reads_done + writer_batches) /. elapsed)
    sheds;
  (* WAL overhead: the writer's batch stream replayed against an
     in-memory facade and a durable one fsyncing every batch. The
     ratio lands in bench_metrics.json so the cost of durability on
     the serving write path is pinned, not guessed. *)
  let wal_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kaskade-serve-wal-%d" (Unix.getpid ()))
  in
  rm_rf wal_dir;
  let batch_ops =
    [ Graph.Overlay.Insert_vertex { vtype = "File"; props = [] };
      Graph.Overlay.Insert_vertex { vtype = "Job"; props = [] } ]
  in
  let mem_ks =
    Kaskade.make
      ~config:{ Kaskade.Config.default with auto_refresh = false }
      (Kaskade_gen.Provenance_gen.generate cfg)
  in
  let _, memory_s =
    time_once (fun () ->
        for _ = 1 to writer_batches do Kaskade.Update.batch batch_ops mem_ks done)
  in
  let wal_ks =
    Kaskade.make
      ~config:
        { Kaskade.Config.default with
          auto_refresh = false; data_dir = Some wal_dir;
          fsync_policy = Kaskade_store.Wal.Always; snapshot_every = max_int }
      (Kaskade_gen.Provenance_gen.generate cfg)
  in
  let _, wal_s =
    time_once (fun () ->
        for _ = 1 to writer_batches do Kaskade.Update.batch batch_ops wal_ks done)
  in
  (match Kaskade.store wal_ks with
  | Some s when Kaskade_store.Store.last_seq s = writer_batches -> ()
  | Some s ->
    Printf.eprintf "FAIL: WAL facade logged %d batches, expected %d\n"
      (Kaskade_store.Store.last_seq s) writer_batches;
    exit 1
  | None ->
    Printf.eprintf "FAIL: durable serve facade has no store attached\n";
    exit 1);
  rm_rf wal_dir;
  let overhead = wal_s /. Float.max 1e-9 memory_s in
  Printf.printf
    "WAL overhead: %d batches in-memory %.3fs vs fsync-always %.3fs (%.1fx)\n" writer_batches
    memory_s wal_s overhead;
  let open Kaskade_obs.Report in
  (* Merge, don't clobber: maintenance/e2e own other top-level keys. *)
  let existing =
    if Sys.file_exists "bench_metrics.json" then
      match parse (In_channel.with_open_text "bench_metrics.json" In_channel.input_all) with
      | Ok (Obj kvs) -> List.filter (fun (k, _) -> k <> "serve_wal") kvs
      | _ -> []
    else []
  in
  let json =
    Obj
      (existing
      @ [ ( "serve_wal",
            Obj
              [ ("batches", Int writer_batches); ("memory_s", Float memory_s);
                ("wal_always_s", Float wal_s); ("overhead_x", Float overhead) ] ) ])
  in
  let oc = open_out "bench_metrics.json" in
  output_string oc (to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  print_endline "serve drill passed (serve_wal overhead written to bench_metrics.json)"

(* ------------------------------------------------------------------ *)
(* Recovery: durability drill — kill mid-WAL-append, then recover      *)

(* A durable facade takes five recorded update batches (snapshots
   auto-fire every 4 appends), then a sixth batch is killed halfway
   through its WAL append (the ["store.wal_append"] fault writes half
   a record, fsyncs, and re-raises — the closest a test can get to
   pulling the plug). Recovery must rebuild the exact pre-crash store
   from newest-snapshot + WAL tail: graph byte-identical to a
   never-crashed twin, view freshness identical, the torn tail counted
   once, the tail past the snapshot replayed op-for-op, and the
   recovered facade must keep serving (append + re-recover). [--smoke]
   only shrinks the graph — the assertions are always hard. *)
let recovery () =
  header "Recovery: binary snapshot + WAL tail replay after a mid-append kill";
  let module M = Kaskade_obs.Metrics in
  let module Store = Kaskade_store.Store in
  let jobs = if !smoke then 150 else 1_000 in
  let gen () =
    Kaskade_gen.Provenance_gen.(generate { default with jobs; files = 2 * jobs; seed = 7 })
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kaskade-recovery-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let config =
    { Kaskade.Config.default with
      data_dir = Some dir; fsync_policy = Kaskade_store.Wal.Always; snapshot_every = 4;
      auto_refresh = false }
  in
  let view =
    Kaskade_views.View.Connector
      (Kaskade_views.View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 })
  in
  let ks = Kaskade.make ~config (gen ()) in
  ignore (Kaskade.materialize ks view);
  (* explicit snapshot now covers the materialized view, so recovery
     restores it instead of rematerializing *)
  ignore (Kaskade.snapshot ks);
  let recorded = ref [] in
  for i = 1 to 5 do
    let ops = Kaskade_gen.Mutate.random_ops ~seed:(100 + i) (Kaskade.graph ks) in
    recorded := ops :: !recorded;
    Kaskade.Update.batch ops ks
  done;
  let recorded = List.rev !recorded in
  let killed = Kaskade_gen.Mutate.random_ops ~seed:999 (Kaskade.graph ks) in
  (match
     Budget.Faults.(with_faults [ fault ~times:1 "store.wal_append" Fail ]) (fun () ->
         Kaskade.Update.batch killed ks)
   with
  | () ->
    Printf.eprintf "FAIL: mid-append kill did not abort the batch\n";
    exit 1
  | exception Budget.Fault_injected _ ->
    print_endline "batch 6 killed mid-WAL-append (half a record left on disk)");
  let m_replayed = M.counter "kaskade.recovery_replayed_ops" in
  let m_truncated = M.counter "kaskade.recovery_truncated_records" in
  let base_replayed = M.counter_value m_replayed in
  let base_truncated = M.counter_value m_truncated in
  let rks = Kaskade.recover ~config dir in
  (* never-crashed twin: same seed graph, same view, same recorded
     batches, no disk — the ground truth recovery must reproduce *)
  let twin = Kaskade.make ~config:{ config with Kaskade.Config.data_dir = None } (gen ()) in
  ignore (Kaskade.materialize twin view);
  List.iter (fun ops -> Kaskade.Update.batch ops twin) recorded;
  if Gio.to_string (Kaskade.graph rks) <> Gio.to_string (Kaskade.graph twin) then begin
    Printf.eprintf "FAIL: recovered graph differs from never-crashed twin\n";
    exit 1
  end;
  if Kaskade.Update.freshness rks <> Kaskade.Update.freshness twin then begin
    Printf.eprintf "FAIL: recovered view freshness differs from never-crashed twin\n";
    exit 1
  end;
  let d_truncated = M.counter_value m_truncated - base_truncated in
  if d_truncated <> 1 then begin
    Printf.eprintf "FAIL: torn tail counted %d times (want exactly 1)\n" d_truncated;
    exit 1
  end;
  let snap_seq = Store.snapshot_seq (Option.get (Kaskade.store rks)) in
  let expected_replayed =
    List.fold_left ( + ) 0
      (List.filteri (fun i _ -> i + 1 > snap_seq) (List.map List.length recorded))
  in
  let d_replayed = M.counter_value m_replayed - base_replayed in
  if d_replayed <> expected_replayed then begin
    Printf.eprintf "FAIL: replayed %d ops past snapshot seq %d (want %d)\n" d_replayed
      snap_seq expected_replayed;
    exit 1
  end;
  Printf.printf
    "recovered |V|=%d |E|=%d identical to twin: snapshot seq %d + %d replayed ops, 1 torn \
     record truncated\n"
    (Graph.n_vertices (Kaskade.graph rks)) (Graph.n_edges (Kaskade.graph rks)) snap_seq
    d_replayed;
  (* end-to-end: both sides repair their view and must answer the
     2-hop query with identical rows, via the view *)
  let q = Kaskade.parse "MATCH (a:Job)-[r*2..2]->(b:Job) RETURN a, b" in
  ignore (Kaskade.Update.refresh_views rks);
  ignore (Kaskade.Update.refresh_views twin);
  let module Executor = Kaskade_exec.Executor in
  let module Row = Kaskade_exec.Row in
  let rows_of = function
    | Executor.Table t -> List.sort compare (List.map Array.to_list t.Row.rows)
    | Executor.Affected n -> [ [ Row.Prim (Value.Int n) ] ]
  in
  let r_res, r_how = run_auto rks q in
  let t_res, _ = run_auto twin q in
  if rows_of r_res <> rows_of t_res then begin
    Printf.eprintf "FAIL: recovered facade answers the 2-hop query differently\n";
    exit 1
  end;
  (match r_how with
  | Kaskade.Via_view v -> Printf.printf "2-hop query via %s: rows match twin\n" v
  | Kaskade.Raw ->
    Printf.eprintf "FAIL: recovered view not used for the 2-hop query\n";
    exit 1);
  (* liveness: the recovered store keeps accepting appends, and a
     second recovery over the longer log is exact (idempotent) *)
  let more = Kaskade_gen.Mutate.random_ops ~seed:2024 (Kaskade.graph rks) in
  Kaskade.Update.batch more rks;
  let rks2 = Kaskade.recover ~config dir in
  if Gio.to_string (Kaskade.graph rks2) <> Gio.to_string (Kaskade.graph rks) then begin
    Printf.eprintf "FAIL: second recovery diverged after post-recovery appends\n";
    exit 1
  end;
  if not !smoke then begin
    (* fsync-policy cost: the trade-off the config knob buys *)
    let appends = 400 in
    let policy_time name policy =
      let pdir = dir ^ "-" ^ name in
      rm_rf pdir;
      let cfg =
        { config with
          Kaskade.Config.data_dir = Some pdir; fsync_policy = policy;
          snapshot_every = max_int }
      in
      let pks = Kaskade.make ~config:cfg (gen ()) in
      let _, t =
        time_once (fun () ->
            for _ = 1 to appends do
              ignore (Kaskade.Update.insert_vertex pks ~vtype:"File" ())
            done)
      in
      rm_rf pdir;
      Printf.printf "fsync %-9s %d appends in %.3fs (%.0f appends/s)\n" name appends t
        (float_of_int appends /. Float.max 1e-9 t)
    in
    policy_time "always" Kaskade_store.Wal.Always;
    policy_time "every:64" (Kaskade_store.Wal.Every_n 64);
    policy_time "never" Kaskade_store.Wal.Never
  end;
  rm_rf dir;
  print_endline "recovery drill passed: snapshot + WAL tail rebuilt the exact pre-crash store"

let all_experiments =
  [ ("table3", table3); ("table4", table4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig5k", fig5k); ("fig8", fig8); ("catalog", catalog); ("enum", enum); ("select", select);
    ("e2e", e2e); ("microbench", microbench); ("shard", shard); ("maintenance", maintenance);
    ("faults", faults); ("regress", regress); ("serve", serve_exp); ("recovery", recovery) ]
