(* Benchmark harness entry point.

   Usage:
     bench/main.exe                 run every experiment
     bench/main.exe fig7 table3     run selected experiments
     bench/main.exe --scale 0.5 ... shrink/grow datasets
     bench/main.exe --bechamel      Bechamel micro-benchmarks (one
                                    Test.make per reproduced artifact)
     bench/main.exe microbench --smoke
                                    tiny fixture run with hard
                                    assertions (CI)
     bench/main.exe maintenance [--smoke]
                                    incremental refresh vs full
                                    rebuild sweep (every refresh
                                    checked against its rebuild)
     bench/main.exe faults [--smoke]
                                    degradation drill: injected
                                    refresh failures open the circuit
                                    breaker, queries degrade to
                                    correct base-graph answers,
                                    deadlines surface as typed errors

     bench/main.exe regress [--smoke]
                                    fixed facade workload vs the
                                    committed bench_baseline.json:
                                    routing + rows exact, speedup
                                    within tolerance (full mode
                                    rewrites the baseline)

     bench/main.exe serve [--smoke]
                                    concurrency drill over the line
                                    protocol: 4 readers pinned to the
                                    opening snapshot + 1 writer, every
                                    read byte-identical to a serial
                                    run, sheds typed + counted, server
                                    live after; also times the
                                    writer's batch stream with and
                                    without an fsync-always WAL
                                    (serve_wal in bench_metrics.json)

     bench/main.exe recovery [--smoke]
                                    durability drill: a seeded fault
                                    kills a batch mid-WAL-append, then
                                    recovery (newest snapshot + WAL
                                    tail replay) must rebuild a store
                                    identical to a never-crashed twin,
                                    count the torn record, and keep
                                    serving (full mode adds an
                                    fsync-policy cost sweep)

   Experiment ids: table3 table4 fig5 fig6 fig7 fig8 catalog enum
   select e2e microbench maintenance faults regress serve recovery
   (see DESIGN.md's experiment index). *)

let bechamel_tests () =
  let open Bechamel in
  (* One Test.make per table/figure: each measures the experiment's
     representative unit of work so Bechamel's statistics apply. *)
  let d = Datasets.prov_raw in
  let filter = Datasets.filter_graph d in
  let conn = Datasets.connector_graph d in
  let filter_ctx = Kaskade_exec.Executor.create filter in
  let conn_ctx = Kaskade_exec.Executor.create conn in
  let q4 = Queries.q4 d in
  let schema = Kaskade_gen.Provenance_gen.schema in
  let q1_parsed = Kaskade.parse (Option.get (Queries.q1 d).Queries.raw) in
  let small =
    Kaskade_gen.Provenance_gen.(generate { default with jobs = 500; files = 1_000; seed = 3 })
  in
  let small_stats = Kaskade_graph.Gstats.compute small in
  let tests =
    [ Test.make ~name:"table3/generate-prov"
        (Staged.stage (fun () ->
             ignore
               Kaskade_gen.Provenance_gen.(
                 generate { default with jobs = 500; files = 1_000; seed = 3 })));
      Test.make ~name:"table4/parse-workload"
        (Staged.stage (fun () ->
             List.iter
               (fun (q : Queries.bench_query) ->
                 match q.Queries.raw with Some s -> ignore (Kaskade.parse s) | None -> ())
               (Queries.workload d)));
      Test.make ~name:"fig5/estimate-2hop"
        (Staged.stage (fun () ->
             ignore (Kaskade.Estimator.estimate_paths small_stats ~k:2 ~alpha:95.0)));
      Test.make ~name:"fig6/materialize-connector"
        (Staged.stage (fun () ->
             ignore
               (Kaskade_views.Materialize.k_hop_connector small ~src_type:"Job" ~dst_type:"Job"
                  ~k:2)));
      Test.make ~name:"fig7/q4-filter"
        (Staged.stage (fun () ->
             ignore (Kaskade_exec.Executor.run_string filter_ctx (Option.get q4.Queries.raw))));
      Test.make ~name:"fig7/q4-connector"
        (Staged.stage (fun () ->
             ignore
               (Kaskade_exec.Executor.run_string conn_ctx (Option.get q4.Queries.over_connector))));
      Test.make ~name:"fig8/degree-dist"
        (Staged.stage (fun () -> ignore (Kaskade_algo.Degree_dist.of_graph small)));
      Test.make ~name:"enum/constraint-based"
        (Staged.stage (fun () -> ignore (Kaskade.Enumerate.enumerate schema q1_parsed)));
      Test.make ~name:"select/knapsack"
        (Staged.stage (fun () ->
             ignore
               (Kaskade.Selection.select small_stats schema ~queries:[ q1_parsed ]
                  ~budget_edges:100_000)))
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-32s %14.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-32s (no estimate)\n%!" name)
        analyzed)
    tests

let () =
  let rec parse (scale, bechamel, ids) = function
    | [] -> (scale, bechamel, List.rev ids)
    | "--scale" :: v :: rest -> parse (float_of_string v, bechamel, ids) rest
    | "--bechamel" :: rest -> parse (scale, true, ids) rest
    | "--smoke" :: rest ->
      Exps.smoke := true;
      parse (scale, bechamel, ids) rest
    | id :: rest -> parse (scale, bechamel, id :: ids) rest
  in
  let scale, bechamel, selected =
    parse (1.0, false, []) (List.tl (Array.to_list Sys.argv))
  in
  Datasets.scale := scale;
  (* Long runs stay narratable: every 50th facade query prints one
     status line (outcome mix + latency quantiles) from the query
     log instead of minutes of silence. *)
  Kaskade_obs.Qlog.set_notifier ~every:50
    (Some (fun line -> Printf.printf "[%s]\n%!" line));
  if bechamel then bechamel_tests ()
  else begin
    let to_run =
      if selected = [] then Exps.all_experiments
      else
        List.map
          (fun id ->
            match List.assoc_opt id Exps.all_experiments with
            | Some f -> (id, f)
            | None ->
              Printf.eprintf "unknown experiment %s (known: %s)\n" id
                (String.concat " " (List.map fst Exps.all_experiments));
              exit 1)
          selected
    in
    let t0 = Kaskade_util.Mclock.now_s () in
    List.iter (fun (_, f) -> f ()) to_run;
    Printf.printf "\ntotal bench time: %.1fs\n" (Kaskade_util.Mclock.now_s () -. t0)
  end
